package sim

import (
	"fmt"
	"testing"
)

// recorder collects observation strings at globally ordered points (post-
// Sync effect context, engine events). Serial and wave runs must produce
// identical streams.
type recorder struct {
	events []string
}

func (r *recorder) note(format string, args ...any) {
	r.events = append(r.events, fmt.Sprintf(format, args...))
}

// runScenario builds and runs one scenario with the given worker count
// (0 = serial) and returns the record stream, the final engine clock, and
// the final sequence counter — the three things that must be bit-identical
// across dispatch modes.
func runScenario(workers int, build func(e *Engine, rec *recorder)) ([]string, Time, uint64) {
	e := NewEngine()
	if workers > 1 {
		e.EnableIntra(workers, nil)
	}
	rec := &recorder{}
	build(e, rec)
	end := e.Run()
	e.Shutdown()
	return rec.events, end, e.seq
}

// assertEquivalent runs the scenario serially and with 2 and 4 workers and
// requires bit-identical outcomes.
func assertEquivalent(t *testing.T, build func(e *Engine, rec *recorder)) {
	t.Helper()
	base, baseEnd, baseSeq := runScenario(0, build)
	if len(base) == 0 {
		t.Fatal("scenario recorded nothing; test proves nothing")
	}
	for _, workers := range []int{2, 4} {
		got, end, seq := runScenario(workers, build)
		if end != baseEnd {
			t.Fatalf("workers=%d: final clock %d, serial %d", workers, end, baseEnd)
		}
		if seq != baseSeq {
			t.Fatalf("workers=%d: final seq %d, serial %d", workers, seq, baseSeq)
		}
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d records, serial %d\nparallel: %v\nserial:   %v",
				workers, len(got), len(base), got, base)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: record %d = %q, serial %q", workers, i, got[i], base[i])
			}
		}
	}
}

// TestWaveEquivalenceUniformCompute: pure compute with periodic effect
// syncs — the bread-and-butter wave shape (all cores crunching between
// barriers).
func TestWaveEquivalenceUniformCompute(t *testing.T) {
	assertEquivalent(t, func(e *Engine, rec *recorder) {
		for i := 0; i < 6; i++ {
			i := i
			step := Duration(30 + 17*i)
			e.NewProc(fmt.Sprintf("p%d", i), 0, func(p *Proc) {
				p.SetQuantum(100)
				p.SetWaveLookahead(700)
				for k := 0; k < 120; k++ {
					p.Advance(step)
					if k%13 == 12 {
						p.Sync() // effect park: globally ordered
						rec.note("p%d effect k=%d now=%d local=%d", i, k, e.Now(), p.LocalTime())
					}
				}
				p.Sync()
				rec.note("p%d done now=%d", i, e.Now())
			})
		}
	})
}

// TestWaveEquivalenceProducersConsumer mixes pure compute with signal
// traffic and an indefinitely waiting consumer.
func TestWaveEquivalenceProducersConsumer(t *testing.T) {
	assertEquivalent(t, func(e *Engine, rec *recorder) {
		sig := NewSignal(e)
		mail := 0
		for i := 0; i < 5; i++ {
			i := i
			step := Duration(40 + 23*i)
			e.NewProc(fmt.Sprintf("prod%d", i), 0, func(p *Proc) {
				p.SetQuantum(90)
				p.SetWaveLookahead(400)
				for k := 0; k < 40; k++ {
					p.Advance(step)
					if k%9 == 8 {
						p.Sync()
						mail++
						sig.Fire(p.LocalTime())
						rec.note("prod%d fire mail=%d now=%d", i, mail, e.Now())
					}
				}
			})
		}
		e.NewProc("consumer", 0, func(p *Proc) {
			for mail < 20 {
				sig.Wait(p)
			}
			rec.note("consumer saw %d at %d", mail, e.Now())
		})
	})
}

// TestWaveEquivalenceHaltMidRun crash-halts one proc from an engine event
// while the rest keep computing; the halt must land between the same two
// segments in both modes.
func TestWaveEquivalenceHaltMidRun(t *testing.T) {
	assertEquivalent(t, func(e *Engine, rec *recorder) {
		var victim *Proc
		for i := 0; i < 4; i++ {
			i := i
			pp := e.NewProc(fmt.Sprintf("w%d", i), 0, func(p *Proc) {
				p.SetQuantum(80)
				p.SetWaveLookahead(300)
				for k := 0; k < 60; k++ {
					p.Advance(Duration(25 + 11*i))
					if k%15 == 14 {
						p.Sync()
						rec.note("w%d effect k=%d now=%d", i, k, e.Now())
					}
				}
			})
			if i == 2 {
				victim = pp
			}
		}
		e.At(1200, func() {
			victim.Halt()
			rec.note("halt at %d", e.Now())
		})
	})
}

// TestWaveEquivalenceProcAt schedules engine callbacks from inside pure
// segments via Proc.At; the callbacks must fire at identical (time, seq)
// positions in both modes.
func TestWaveEquivalenceProcAt(t *testing.T) {
	assertEquivalent(t, func(e *Engine, rec *recorder) {
		for i := 0; i < 4; i++ {
			i := i
			e.NewProc(fmt.Sprintf("q%d", i), 0, func(p *Proc) {
				p.SetQuantum(100)
				p.SetWaveLookahead(600)
				for k := 0; k < 50; k++ {
					p.Advance(Duration(35 + 13*i))
					if k%11 == 7 {
						// Mid-segment deadline request, the WaitFor/WaitUntil
						// pattern: schedule a callback at a future local time.
						at := p.LocalTime() + 500
						k := k
						p.At(at, func() {
							rec.note("q%d deadline k=%d fires now=%d", i, k, e.Now())
						})
					}
				}
				p.Sync()
				rec.note("q%d done now=%d", i, e.Now())
			})
		}
	})
}

// TestWaveEquivalenceZeroQuantumInterleaved: an unbounded (zero-quantum)
// proc runs to completion in one dispatch while bounded procs wave; the
// unbounded proc's effect points must interleave identically.
func TestWaveEquivalenceZeroQuantumInterleaved(t *testing.T) {
	assertEquivalent(t, func(e *Engine, rec *recorder) {
		e.NewProc("unbounded", 0, func(p *Proc) {
			for k := 0; k < 10; k++ {
				p.Advance(333)
				p.Sync()
				rec.note("unbounded effect k=%d now=%d", k, e.Now())
			}
		})
		for i := 0; i < 3; i++ {
			i := i
			e.NewProc(fmt.Sprintf("b%d", i), 0, func(p *Proc) {
				p.SetQuantum(70)
				p.SetWaveLookahead(350)
				for k := 0; k < 80; k++ {
					p.Advance(Duration(20 + 9*i))
					if k%20 == 19 {
						p.Sync()
						rec.note("b%d effect k=%d now=%d", i, k, e.Now())
					}
				}
			})
		}
	})
}

// TestWaveEquivalenceWaveReadyGate: a proc whose waveReady predicate says
// no must be dispatched serially, and flipping the gate from an engine
// event must behave identically in both modes.
func TestWaveEquivalenceWaveReadyGate(t *testing.T) {
	assertEquivalent(t, func(e *Engine, rec *recorder) {
		gate := true // toggled from engine events (serial context only)
		for i := 0; i < 4; i++ {
			i := i
			p := e.NewProc(fmt.Sprintf("g%d", i), 0, func(p *Proc) {
				p.SetQuantum(60)
				p.SetWaveLookahead(250)
				for k := 0; k < 70; k++ {
					p.Advance(Duration(15 + 7*i))
					if k%23 == 22 {
						p.Sync()
						rec.note("g%d effect k=%d now=%d", i, k, e.Now())
					}
				}
			})
			if i == 1 {
				p.SetWaveReady(func() bool { return gate })
			}
		}
		e.At(500, func() { gate = false; rec.note("gate closed at %d", e.Now()) })
		e.At(1500, func() { gate = true; rec.note("gate opened at %d", e.Now()) })
	})
}

// fakeObserver implements WaveObserver the way trace.Buffer does: per-shard
// buffers with monotonic positions, spliced into a main stream at flush.
type fakeObserver struct {
	inWave bool
	shards [][]string
	bases  []int
	main   *[]string
}

func newFakeObserver(shards int, main *[]string) *fakeObserver {
	return &fakeObserver{
		shards: make([][]string, shards),
		bases:  make([]int, shards),
		main:   main,
	}
}

func (o *fakeObserver) WaveBegin() { o.inWave = true }
func (o *fakeObserver) WaveEnd()   { o.inWave = false }

func (o *fakeObserver) SegmentMark(shard int) int {
	return o.bases[shard] + len(o.shards[shard])
}

func (o *fakeObserver) SegmentFlush(shard int, from, to int) {
	if from != o.bases[shard] {
		panic(fmt.Sprintf("non-contiguous flush: from %d, base %d", from, o.bases[shard]))
	}
	n := to - from
	*o.main = append(*o.main, o.shards[shard][:n]...)
	o.shards[shard] = o.shards[shard][n:]
	o.bases[shard] = to
}

// emit routes like trace.Buffer will: to the shard during a wave's
// concurrent section, straight to the main stream otherwise.
func (o *fakeObserver) emit(shard int, s string) {
	if o.inWave {
		o.shards[shard] = append(o.shards[shard], s)
		return
	}
	*o.main = append(*o.main, s)
}

// TestWaveObserverSplicesSerialOrder drives emissions from inside pure
// segments (the trace.Emit-from-compute case) and requires the spliced
// stream to match the serial emission order exactly.
func TestWaveObserverSplicesSerialOrder(t *testing.T) {
	run := func(workers int) []string {
		e := NewEngine()
		var main []string
		obs := newFakeObserver(4, &main)
		if workers > 1 {
			e.EnableIntra(workers, obs)
		}
		for i := 0; i < 4; i++ {
			i := i
			e.NewProc(fmt.Sprintf("c%d", i), 0, func(p *Proc) {
				p.SetQuantum(110)
				p.SetWaveShard(i)
				p.SetWaveLookahead(800)
				for k := 0; k < 90; k++ {
					p.Advance(Duration(28 + 19*i))
					if k%5 == 0 {
						// Emission from (potentially) inside a pure segment.
						obs.emit(i, fmt.Sprintf("c%d k=%d local=%d", i, k, p.LocalTime()))
					}
					if k%31 == 30 {
						p.Sync()
						obs.emit(i, fmt.Sprintf("c%d sync now=%d", i, e.Now()))
					}
				}
			})
		}
		e.Run()
		e.Shutdown()
		return main
	}
	serial := run(0)
	if len(serial) == 0 {
		t.Fatal("no emissions recorded")
	}
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: %d emissions, serial %d", workers, len(got), len(serial))
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: emission %d = %q, serial %q", workers, i, got[i], serial[i])
			}
		}
	}
}

// TestWaveRunUntilBoundary: waves must respect a finite RunUntil limit —
// no segment may run past it, so mid-run state (clock, pending count)
// matches serial at the boundary.
func TestWaveRunUntilBoundary(t *testing.T) {
	run := func(workers int) (Time, int, Time, []string) {
		e := NewEngine()
		if workers > 1 {
			e.EnableIntra(workers, nil)
		}
		rec := &recorder{}
		var locals []*Proc
		for i := 0; i < 3; i++ {
			i := i
			locals = append(locals, e.NewProc(fmt.Sprintf("r%d", i), 0, func(p *Proc) {
				p.SetQuantum(50)
				p.SetWaveLookahead(10000)
				for k := 0; k < 100; k++ {
					p.Advance(Duration(30 + 8*i))
					if k%33 == 32 {
						p.Sync()
						rec.note("r%d effect now=%d", i, e.Now())
					}
				}
			}))
		}
		mid := e.RunUntil(1000)
		// Mid-run local clocks are observable state: serial and wave runs
		// must agree at the boundary.
		for i, p := range locals {
			rec.note("mid r%d local=%d", i, p.LocalTime())
		}
		end := e.Run()
		e.Shutdown()
		return mid, e.Pending(), end, rec.events
	}
	sMid, sPend, sEnd, sRec := run(0)
	for _, workers := range []int{2, 4} {
		mid, pend, end, recs := run(workers)
		if mid != sMid || pend != sPend || end != sEnd {
			t.Fatalf("workers=%d: mid=%d pend=%d end=%d, serial mid=%d pend=%d end=%d",
				workers, mid, pend, end, sMid, sPend, sEnd)
		}
		if len(recs) != len(sRec) {
			t.Fatalf("workers=%d: %d records, serial %d", workers, len(recs), len(sRec))
		}
		for i := range sRec {
			if recs[i] != sRec[i] {
				t.Fatalf("workers=%d: record %d = %q, serial %q", workers, i, recs[i], sRec[i])
			}
		}
	}
}

// TestEngineAtFromWavePanics: the causality assertion that catches
// unconverted Engine.At call sites inside pure segments.
func TestEngineAtFromWavePanics(t *testing.T) {
	e := NewEngine()
	e.EnableIntra(2, nil)
	panicked := make(chan any, 1)
	for i := 0; i < 2; i++ {
		i := i
		e.NewProc(fmt.Sprintf("x%d", i), 0, func(p *Proc) {
			p.SetQuantum(40)
			p.SetWaveLookahead(100000)
			for k := 0; k < 30; k++ {
				p.Advance(100)
				if i == 0 && k == 10 {
					func() {
						defer func() {
							if r := recover(); r != nil {
								panicked <- r
							}
						}()
						e.At(p.LocalTime()+5, func() {})
					}()
				}
			}
		})
	}
	e.Run()
	e.Shutdown()
	select {
	case r := <-panicked:
		if s, ok := r.(string); !ok || !contains(s, "wave-parallel context") {
			t.Fatalf("panic = %v, want wave-parallel context message", r)
		}
	default:
		t.Fatal("Engine.At from a wave segment did not panic")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// --- Quantum/lookahead edge cases (serial semantics the horizon rests on) ---

// TestSetQuantumMidAdvance changes the quantum between Advance calls; the
// new bound must take effect for the very next Advance.
func TestSetQuantumMidAdvance(t *testing.T) {
	e := NewEngine()
	var syncs []Time
	e.NewProc("p", 0, func(p *Proc) {
		p.SetQuantum(100)
		p.Advance(150) // exceeds 100: parks at 150
		p.SetQuantum(1000)
		p.Advance(900) // lookahead 900 <= 1000: no park
		if e.Now() != 150 {
			syncs = append(syncs, ^Time(0))
		}
		p.Advance(200) // lookahead 1100 > 1000: parks at 1250
		p.SetQuantum(50)
		p.Advance(60) // new tight bound: parks at 1310
		p.Sync()
	})
	trackSyncs := func() {}
	_ = trackSyncs
	e.Run()
	if len(syncs) != 0 {
		t.Fatal("quantum 1000 did not suppress the park")
	}
	if e.Now() != 1310 {
		t.Fatalf("final clock %d, want 1310", e.Now())
	}
}

// TestQuantumExactlyEqualToStep: a quantum exactly equal to the advance
// step must not park (the bound is strict: lookahead > quantum), and two
// steps must.
func TestQuantumExactlyEqualToStep(t *testing.T) {
	e := NewEngine()
	parks := 0
	e.NewProc("p", 0, func(p *Proc) {
		p.SetSyncHook(func() { parks++ })
		p.SetQuantum(100)
		p.Advance(100) // lookahead == quantum: stays local
		if e.Now() != 0 {
			t.Errorf("engine advanced to %d on an exactly-quantum step", e.Now())
		}
		p.Advance(100) // lookahead 200 > 100: parks at 200
		if e.Now() != 200 {
			t.Errorf("engine at %d after second step, want 200", e.Now())
		}
	})
	e.Run()
	if parks != 1 {
		t.Fatalf("parks = %d, want exactly 1", parks)
	}
}

// TestZeroQuantumUnbounded: zero quantum means unbounded lookahead — the
// proc must never park on Advance no matter how far it runs ahead, while a
// bounded sibling interleaves normally.
func TestZeroQuantumUnbounded(t *testing.T) {
	e := NewEngine()
	var order []string
	e.NewProc("free", 0, func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(1000)
		}
		if e.Now() != 0 {
			t.Errorf("unbounded proc advanced the engine to %d", e.Now())
		}
		p.Sync()
		order = append(order, fmt.Sprintf("free@%d", e.Now()))
	})
	e.NewProc("tight", 0, func(p *Proc) {
		p.SetQuantum(10)
		for i := 0; i < 5; i++ {
			p.Advance(100)
			order = append(order, fmt.Sprintf("tight@%d", p.LocalTime()))
		}
	})
	e.Run()
	// tight parks at 100..500 and records after each park; free syncs at
	// 1000000 last.
	want := []string{"tight@100", "tight@200", "tight@300", "tight@400", "tight@500", "free@1000000"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
