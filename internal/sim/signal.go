package sim

// Signal wakes processes that are waiting for a condition to change.
//
// Users must follow the check-then-wait discipline:
//
//	for !condition() {
//	    sig.Wait(p)
//	}
//
// together with the rule that whoever makes the condition true does so at a
// globally ordered time (after Sync) and then Fires the signal at the time
// the change becomes visible. Under that discipline wakeups cannot be lost:
// either the change is applied before the waiter's check (the check sees
// it), or the waiter is already registered when the Fire event runs.
//
// Wait can return spuriously (for example when the waiting process receives
// an interrupt); the check loop absorbs that.
type Signal struct {
	eng     *Engine
	waiters []*Proc
	// seq is an eventcount: it increments every time a Fire event executes.
	// Waiters that may perform multiple parking operations between checking
	// their condition and finally waiting (e.g. a mailbox scan, where every
	// slot probe syncs) capture Seq first and use WaitSeq, which refuses to
	// park if a Fire slipped into that window.
	seq uint64
}

// NewSignal returns a signal bound to the engine.
func NewSignal(e *Engine) *Signal { return &Signal{eng: e} }

// Wait registers p as a waiter and parks it until a Fire (or any other Wake)
// resumes it. Callers must re-check their condition afterwards.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.Wait()
	for i, w := range s.waiters {
		if w == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			break
		}
	}
}

// Fire schedules a wake of every currently registered waiter at time at
// (clamped to the present). Waiter order is registration order, keeping the
// engine deterministic.
func (s *Signal) Fire(at Time) {
	if at < s.eng.now {
		at = s.eng.now
	}
	s.eng.At(at, func() {
		s.seq++
		// Snapshot: waiters registered after this event runs wait for the
		// next Fire, which is correct under check-then-wait.
		ws := make([]*Proc, len(s.waiters))
		copy(ws, s.waiters)
		for _, p := range ws {
			p.Wake(s.eng.now)
		}
	})
}

// Seq returns the eventcount value; see WaitSeq.
func (s *Signal) Seq() uint64 { return s.seq }

// WaitSeq parks p unless the signal fired since seq was captured (in which
// case it returns immediately, as a spurious wakeup, so the caller
// re-checks its condition).
func (s *Signal) WaitSeq(p *Proc, seq uint64) {
	if s.seq != seq {
		return
	}
	s.Wait(p)
}

// Waiters reports how many processes are currently registered.
func (s *Signal) Waiters() int { return len(s.waiters) }

// WaitAny parks p until any of the given signals fires (or any other Wake
// reaches the process). Like Wait it may return spuriously; callers loop.
func WaitAny(p *Proc, sigs ...*Signal) {
	WaitAnySeq(p, sigs, nil)
}

// WaitAnySeq is WaitAny with eventcounts: if seqs is non-nil (parallel to
// sigs) and any signal fired since its seq was captured, the call returns
// immediately instead of parking. Use it when the caller performs parking
// operations between its condition checks and this wait.
func WaitAnySeq(p *Proc, sigs []*Signal, seqs []uint64) {
	if seqs != nil {
		for i, s := range sigs {
			if s.seq != seqs[i] {
				return
			}
		}
	}
	for _, s := range sigs {
		s.waiters = append(s.waiters, p)
	}
	p.Wait()
	for _, s := range sigs {
		for i, w := range s.waiters {
			if w == p {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
	}
}
