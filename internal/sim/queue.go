package sim

// The engine's pending-event set, in two interchangeable implementations
// that dispatch in the identical total order (time, insertion sequence):
//
//   - quadQueue: the production fast path — an inlined, typed 4-ary min-heap
//     plus an append-only FIFO for events scheduled at the engine's current
//     dispatch time. No interface{} boxing, so scheduling an event performs
//     no allocation beyond the occasional slice growth, and the common
//     "schedule at the time being dispatched" case (interrupt posts, mailbox
//     wakes, handler chains) is a plain append instead of a sift-up.
//   - refQueue: the reference — a plain typed binary heap, structurally
//     close to the original container/heap implementation but with direct
//     typed push/pop methods instead of interface{} boxing.
//
// internal/fastpath selects between them at engine construction; the
// equivalence tests run whole experiments on both and compare timestamps
// bit-for-bit, and TestQueueEquivalence drives both against an oracle.

type event struct {
	at  Time
	seq uint64
	fn  func()
	// Data-carrying process wake (fn == nil): resumes proc if its wakeSeq
	// still matches. pure marks quantum-bound wakes (Advance-triggered
	// Sync): the process was parked only because its lookahead bound was
	// exceeded, not because it is about to apply a globally ordered effect.
	// Pure wakes are what the conservative-PDES wave runner (pdes.go) may
	// dispatch concurrently.
	proc    *Proc
	wakeSeq uint64
	pure    bool
}

// eventLess is the engine's dispatch order: time, then insertion sequence.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// --- quadQueue: 4-ary heap + now-FIFO ------------------------------------

// quadQueue holds events not yet dispatched. Events whose time equals the
// engine clock at push time go to the FIFO; all FIFO entries share that
// timestamp (the clock cannot advance while the FIFO is non-empty, because
// its entries are then the queue minimum) and carry increasing sequence
// numbers, so append order is dispatch order. Everything else goes to the
// 4-ary heap. Heap entries with the same timestamp as FIFO entries were
// necessarily pushed earlier (before the clock reached that time) and so
// carry smaller sequence numbers; the (time, seq) comparison in pop and
// head therefore merges the two structures exactly.
type quadQueue struct {
	heap     []event
	fifo     []event
	fifoHead int
}

func (q *quadQueue) len() int { return len(q.heap) + len(q.fifo) - q.fifoHead }

// push inserts ev; now is the engine clock at the time of the call.
func (q *quadQueue) push(ev event, now Time) {
	if ev.at == now {
		q.fifo = append(q.fifo, ev)
		return
	}
	q.heap = append(q.heap, ev)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !eventLess(q.heap[i], q.heap[p]) {
			break
		}
		q.heap[i], q.heap[p] = q.heap[p], q.heap[i]
		i = p
	}
}

// head returns the next event to dispatch without removing it.
func (q *quadQueue) head() (event, bool) {
	have := q.fifoHead < len(q.fifo)
	var m event
	if have {
		m = q.fifo[q.fifoHead]
	}
	if len(q.heap) > 0 && (!have || eventLess(q.heap[0], m)) {
		m = q.heap[0]
		have = true
	}
	return m, have
}

func (q *quadQueue) pop() event {
	if q.fifoHead < len(q.fifo) {
		f := q.fifo[q.fifoHead]
		if len(q.heap) == 0 || eventLess(f, q.heap[0]) {
			q.fifo[q.fifoHead] = event{} // drop the fn reference
			q.fifoHead++
			if q.fifoHead == len(q.fifo) {
				q.fifo = q.fifo[:0]
				q.fifoHead = 0
			}
			return f
		}
	}
	return q.popHeap()
}

func (q *quadQueue) popHeap() event {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop the fn reference
	h = h[:n]
	q.heap = h
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(h[c], h[best]) {
				best = c
			}
		}
		if !eventLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}

// --- refQueue: typed binary heap ------------------------------------------

type refQueue struct {
	heap []event
}

func (q *refQueue) len() int { return len(q.heap) }

func (q *refQueue) push(ev event) {
	q.heap = append(q.heap, ev)
	i := len(q.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(q.heap[i], q.heap[p]) {
			break
		}
		q.heap[i], q.heap[p] = q.heap[p], q.heap[i]
		i = p
	}
}

func (q *refQueue) head() (event, bool) {
	if len(q.heap) == 0 {
		return event{}, false
	}
	return q.heap[0], true
}

func (q *refQueue) pop() event {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	h = h[:n]
	q.heap = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		best := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			best = r
		}
		if !eventLess(h[best], h[i]) {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top
}
