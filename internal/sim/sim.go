// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives a set of processes (Proc), each backed by a goroutine,
// in strict simulated-time order: exactly one process executes at any moment,
// and pending events are ordered by (time, insertion sequence). Every run of
// the same program therefore produces bit-identical simulated timestamps.
//
// Processes own a local clock that may run ahead of the global engine clock
// while they model compute or private-memory activity (Advance). Before any
// operation whose effect must be globally ordered — a write to a shared
// mailbox flag, a test-and-set register access, an ownership-vector update —
// the process calls Sync, which parks it until the engine clock catches up
// with its local clock. Correctly synchronized simulated programs therefore
// observe the same values as a fully serialized execution, while bulk data
// accesses stay cheap (no event per access).
package sim

import (
	"fmt"
	"math"

	"metalsvm/internal/fastpath"
)

// Time is a point in simulated time, in picoseconds.
//
// Picoseconds are fine enough to mix clock domains (533 MHz cores, 800 MHz
// mesh and memory) without accumulating rounding drift that would matter at
// the microsecond scales the experiments report, and a uint64 of picoseconds
// spans over 200 days of simulated time.
type Time uint64

// Microseconds converts t to microseconds as a float, for reporting.
func (t Time) Microseconds() float64 { return float64(t) / 1e6 }

// Duration is a span of simulated time, in picoseconds.
type Duration = Time

// Microseconds builds a duration from a microsecond count.
func Microseconds(us float64) Duration { return Duration(math.Round(us * 1e6)) }

// Clock converts cycle counts of a fixed-frequency clock domain into
// simulated time.
type Clock struct {
	// PeriodPS is the clock period in picoseconds.
	PeriodPS uint64
}

// MHz returns the clock for a frequency given in megahertz.
func MHz(f float64) Clock {
	if f <= 0 {
		panic("sim: non-positive clock frequency")
	}
	return Clock{PeriodPS: uint64(math.Round(1e6 / f))}
}

// Cycles returns the duration of n clock cycles.
func (c Clock) Cycles(n uint64) Duration { return Duration(n * c.PeriodPS) }

// CyclesFloat returns the duration of a fractional cycle count, rounded.
func (c Clock) CyclesFloat(n float64) Duration {
	return Duration(math.Round(n * float64(c.PeriodPS)))
}

// ToCycles converts a duration into whole cycles of this clock (rounded down).
func (c Clock) ToCycles(d Duration) uint64 { return uint64(d) / c.PeriodPS }

// Engine is the central event queue and scheduler.
// The zero value is not usable; call NewEngine.
type Engine struct {
	now Time
	seq uint64
	// Exactly one of fast/ref is non-nil; see queue.go. Both dispatch in the
	// identical (time, sequence) order.
	fast    *quadQueue
	ref     *refQueue
	procs   []*Proc
	stopped bool
	// running reports whether Run is currently dispatching events. Procs may
	// only execute while the engine runs.
	running bool
	// cur is the proc whose event callback is currently executing, kept for
	// diagnostics (panic messages name the offending process).
	cur *Proc
	// intra, when non-nil, switches RunUntil to conservative-PDES wave
	// dispatch; see pdes.go. Nil keeps the engine strictly serial.
	intra *intraState
}

// NewEngine returns an engine with its clock at zero. The event-queue
// implementation is chosen by fastpath.Enabled() at this point and fixed
// for the engine's lifetime.
func NewEngine() *Engine {
	e := &Engine{}
	if fastpath.Enabled() {
		e.fast = &quadQueue{}
	} else {
		e.ref = &refQueue{}
	}
	return e
}

// qLen returns the number of queued events.
func (e *Engine) qLen() int {
	if e.fast != nil {
		return e.fast.len()
	}
	return e.ref.len()
}

// qHead returns the next event in dispatch order without removing it.
func (e *Engine) qHead() (event, bool) {
	if e.fast != nil {
		return e.fast.head()
	}
	return e.ref.head()
}

// qPop removes and returns the next event in dispatch order.
func (e *Engine) qPop() event {
	if e.fast != nil {
		return e.fast.pop()
	}
	return e.ref.pop()
}

// Now returns the current global simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would violate causality and mask a modeling bug. Scheduling at the
// current time takes the queue's append fast path (see queue.go).
func (e *Engine) At(t Time, fn func()) {
	if e.intra != nil && e.intra.active.Load() {
		panic(fmt.Sprintf("sim: Engine.At(%d) from wave-parallel context; "+
			"proc-context schedulers must use Proc.At", t))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %d before now %d%s", t, e.now, e.curName()))
	}
	e.seq++
	e.pushEvent(event{at: t, seq: e.seq, fn: fn})
}

// curName names the proc whose callback is executing, for panic messages.
func (e *Engine) curName() string {
	if e.cur != nil {
		return " by proc " + e.cur.name
	}
	return ""
}

// pushEvent inserts an event whose sequence number is already assigned.
func (e *Engine) pushEvent(ev event) {
	if e.fast != nil {
		e.fast.push(ev, e.now)
	} else {
		e.ref.push(ev)
	}
}

// scheduleSync enqueues a data-carrying wake for p at time at. Called from
// the proc goroutine while the engine is blocked in its dispatch handshake,
// so it observes a stable engine clock.
func (e *Engine) scheduleSync(at Time, p *Proc, wakeSeq uint64, pure bool) {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %d before now %d by proc %s",
			at, e.now, p.name))
	}
	e.seq++
	e.pushEvent(event{at: at, seq: e.seq, proc: p, wakeSeq: wakeSeq, pure: pure})
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) { e.At(e.now+d, fn) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in (time, sequence) order until the queue drains or
// Stop is called. It returns the final simulated time.
func (e *Engine) Run() Time { return e.RunUntil(Time(math.MaxUint64)) }

// RunUntil dispatches events with timestamps <= limit, then returns.
// The engine clock is left at the last dispatched event (or limit if the
// queue drained earlier events only).
func (e *Engine) RunUntil(limit Time) Time {
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped {
		head, ok := e.qHead()
		if !ok || head.at > limit {
			break
		}
		if e.intra != nil && waveEligible(head) {
			e.runWave(limit)
			continue
		}
		ev := e.qPop()
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %d behind clock %d%s",
				ev.at, e.now, e.curName()))
		}
		e.now = ev.at
		e.dispatchEvent(ev)
	}
	return e.now
}

// dispatchEvent runs one dequeued event: a closure, or a data-carrying
// process wake (fn == nil) that resumes the process if the wake is still
// live — the same guard the closure-based wakes apply.
func (e *Engine) dispatchEvent(ev event) {
	if ev.fn != nil {
		ev.fn()
		return
	}
	p := ev.proc
	if p.wakeSeq == ev.wakeSeq && (p.state == procParked || p.state == procWaiting) {
		p.dispatch()
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.qLen() }

// Shutdown terminates all process goroutines that are still parked. It must
// be called after Run returns when processes may still be blocked (for
// example an idle loop waiting for mail that will never arrive), otherwise
// their goroutines leak. Shutdown is idempotent.
func (e *Engine) Shutdown() {
	for _, p := range e.procs {
		p.shutdown()
	}
}
