// Engine-internal conservative-PDES wave runner: the only file in
// internal/sim that runs more than one process goroutine at a time. Every
// concurrent section is bounded by a wave (see below) and produces results
// bit-identical to serial dispatch by replaying the wave's bookkeeping
// through the main event queue in exact serial (time, sequence) order.
//
//metalsvm:host-parallel
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Intra-run parallel dispatch (conservative PDES).
//
// The serial engine dispatches one event at a time; a process resumed by a
// quantum-bounded Sync runs one compute segment — loads, stores, cache and
// mesh modeling against its own core state — and parks again. Those
// "pure" segments (quantum parks scheduled by Advance) have a property the
// wave runner exploits: they touch no globally ordered state. Every effect
// that another process could observe — an MPB flag, a TAS register, an
// ownership word, an IPI — is applied behind Proc.Sync (an "effect" park),
// and every channel by which one core influences another running core has a
// hard latency floor derived from the mesh geometry: an interrupt pays the
// core-side raise plus interrupt-controller processing plus a mesh
// traversal before the target can observe it at its next park, and every
// other influence rides a queued event the horizon below already bounds.
//
// A wave forms when the queue head is a pure quantum wake: the engine pops
// the maximal run of consecutive eligible pure wakes (the cohort) and
// computes for each member a horizon
//
//	limit(p) = min(next queued event time,
//	               min over other members q of wake(q) + lookahead(p))
//
// where lookahead(p) is the per-core influence floor (provided by the
// platform layer from the exported mesh lookahead matrix). All cohort
// members then run concurrently on a bounded worker pool. Each member
// executes exactly the segments the serial engine would have: it runs
// through quantum parks below its horizon without engine interaction
// (recording them as skips) and stops at its first park at or past the
// horizon, or at its first effect park, Wait, or body return. Overrunning
// the horizon to the next park is sound: a park is the only point where an
// influence is observable, and the member has no park between the horizon
// and where it stopped, so a serial run would have delivered any influence
// at that same park. The horizon's min-other-wake term is what makes the
// overrun safe against the cohort itself: any influence a member generates
// — even segments it runs after resuming from an early effect park —
// originates no earlier than its wake, so it lands at or past every other
// member's horizon. The one member that rule cannot protect is a straggler
// whose own wake already lies at or past its horizon (it resumed much later
// than the rest of the cohort): an influence could land before it even
// wakes, where serial dispatch would deliver it at the wake's sync point.
// Such members do not run in the wave at all — their wakes are re-pushed
// untouched and dispatch serially between the replay events.
//
// Bookkeeping is replayed lazily through the main queue: each member's wake
// is re-pushed with its original (time, seq) as a replay event. When a
// replay event dispatches, it consumes the member's recorded actions for
// one segment — buffered Proc.At requests take fresh sequence numbers, the
// following skip or park schedules the next event — exactly as the serial
// dispatch at that (time, seq) would have, and flushes the segment's trace
// shard. Because replays flow through the ordinary queue, they interleave
// bit-exactly with everything else, including members resumed early from
// effect parks. Identical timestamps, identical sequence numbers, identical
// trace streams: bit-identity is by construction, and the equivalence suite
// asserts it end to end.

// WaveObserver lets an instrumentation layer (the trace buffer) route
// per-shard emissions during a wave's concurrent section and splice them
// into the main stream in exact serial order afterwards. WaveBegin/WaveEnd
// bracket the concurrent section (routing on/off); SegmentMark is called
// from process goroutines (one goroutine per shard at a time) and returns
// the shard's monotonic emission position; SegmentFlush — always serial,
// always in-order and contiguous per shard — appends shard emissions
// [from, to) to the main stream.
type WaveObserver interface {
	WaveBegin()
	SegmentMark(shard int) int
	SegmentFlush(shard int, from, to int)
	WaveEnd()
}

// intraState holds the engine's parallel-dispatch configuration and
// per-wave scratch (reused to keep waves low-allocation).
type intraState struct {
	workers int
	obs     WaveObserver
	// active is set for the duration of a wave's concurrent section; it
	// backs the Engine.At assertion that catches any code path scheduling
	// events from inside a pure segment.
	active atomic.Bool

	cohort []*Proc
	next   atomic.Int64
}

// EnableIntra switches the engine to conservative-PDES dispatch with the
// given worker count. A count below 2 leaves the engine serial. The
// observer may be nil; when set it receives wave brackets and segment
// flushes (the trace buffer uses this to keep emission order bit-exact).
// Must be called before Run.
func (e *Engine) EnableIntra(workers int, obs WaveObserver) {
	if e.running {
		panic("sim: EnableIntra while the engine is running")
	}
	if workers < 2 {
		return
	}
	e.intra = &intraState{workers: workers, obs: obs}
}

// IntraEnabled reports whether parallel intra-run dispatch is active.
func (e *Engine) IntraEnabled() bool { return e.intra != nil }

// waveEligible reports whether the queue-head event can join a wave: a
// live pure quantum wake of a parked process whose sync hook would not
// deliver work (no pending interrupt).
func waveEligible(ev event) bool {
	p := ev.proc
	return p != nil && ev.pure && !p.halted && p.state == procParked &&
		p.wakeSeq == ev.wakeSeq && (p.waveReady == nil || p.waveReady())
}

// runWave forms a cohort starting at the (eligible) queue head, runs it
// concurrently, and seeds the replay events that reconstruct serial
// bookkeeping. The engine clock is not touched: the re-pushed wakes carry
// their original (time, seq), so the main loop advances it exactly as
// serial dispatch would.
func (e *Engine) runWave(limit Time) {
	is := e.intra
	cohort := is.cohort[:0]

	// Form the cohort: the maximal run of consecutive eligible pure wakes
	// within the RunUntil limit. Popping in (time, seq) order guarantees
	// every cohort wake precedes the first remaining queued event.
	for {
		head, ok := e.qHead()
		if !ok || head.at > limit || !waveEligible(head) {
			break
		}
		ev := e.qPop()
		p := ev.proc
		p.waveWakeAt = ev.at
		p.waveWakeSeq = ev.seq
		cohort = append(cohort, p)
	}
	is.cohort = cohort
	if len(cohort) == 0 {
		// RunUntil only calls runWave for an eligible head.
		panic("sim: empty wave cohort")
	}

	// Horizon per member: the first remaining queued event bounds every
	// member (it may be, or may transitively spawn, an influence at its
	// face time); each other member bounds p by its own wake plus p's
	// influence floor; and a finite RunUntil limit bounds how far serial
	// dispatch itself would have driven quantum wakes.
	const never = Time(^uint64(0))
	rest := never
	if head, ok := e.qHead(); ok {
		rest = head.at
	}
	if limit != never && limit+1 < rest {
		rest = limit + 1
	}
	minWake, minWake2 := never, never
	for _, p := range cohort {
		if p.waveWakeAt < minWake {
			minWake, minWake2 = p.waveWakeAt, minWake
		} else if p.waveWakeAt < minWake2 {
			minWake2 = p.waveWakeAt
		}
	}
	for _, p := range cohort {
		other := minWake
		if p.waveWakeAt == minWake {
			other = minWake2 // p itself holds the minimum
		}
		lim := rest
		if other != never && other+p.lookahead < lim {
			lim = other + p.lookahead
		}
		p.waveLimit = lim
	}

	// A member whose own wake lies at or past its horizon cannot safely run
	// even one segment: an influence another member schedules during replay
	// can land before that wake, and serial dispatch would deliver it via
	// the sync hook exactly there. Re-push such members' wakes untouched —
	// they dispatch serially, interleaved with the replay. Their wakes still
	// bound the members that do run: a wake is a lower bound on any
	// influence a member generates however it is dispatched. The first
	// member is always safe — it is the queue head, so its live resume
	// coincides with its serial dispatch — which also guarantees the wave
	// makes progress.
	run := cohort[:0]
	for i, p := range cohort {
		if i == 0 || p.waveWakeAt < p.waveLimit {
			run = append(run, p)
			continue
		}
		e.pushEvent(event{at: p.waveWakeAt, seq: p.waveWakeSeq, proc: p,
			wakeSeq: p.wakeSeq, pure: true})
	}
	cohort = run
	is.cohort = cohort

	// Concurrent section: run each member's segment train on the worker
	// pool. The handshake channels give the usual happens-before edges, so
	// everything a proc wrote before parking is visible to the engine.
	obs := is.obs
	if obs != nil {
		obs.WaveBegin()
	}
	is.active.Store(true)
	workers := is.workers
	if workers > len(cohort) {
		workers = len(cohort)
	}
	is.next.Store(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(is.next.Add(1)) - 1
				if i >= len(cohort) {
					return
				}
				e.runSegmentTrain(cohort[i])
			}
		}()
	}
	wg.Wait()
	is.active.Store(false)
	if obs != nil {
		obs.WaveEnd()
	}

	// Seed the replay: re-push every cohort wake with its original
	// (time, seq). The main loop dispatches them — interleaved with any
	// events the wave's parks produce — in exact serial order.
	for _, p := range cohort {
		p.waveActIdx = 0
		p.wavePrevMark = p.waveStartMark
		q := p
		e.pushEvent(event{at: q.waveWakeAt, seq: q.waveWakeSeq, fn: func() { e.replayStep(q) }})
	}
}

// runSegmentTrain resumes one cohort member and lets it run — through
// skipped quantum parks below its horizon — until it really parks, waits
// or finishes. Runs on a worker goroutine.
func (e *Engine) runSegmentTrain(p *Proc) {
	p.waveActs = p.waveActs[:0]
	p.waveStartMark = 0
	obs := e.intra.obs
	if obs != nil && p.shard >= 0 {
		p.waveStartMark = obs.SegmentMark(p.shard)
	}
	p.waveMode = true
	p.state = procRunning
	p.resume <- struct{}{}
	<-p.yield
	p.waveMode = false
	if p.state == procDone {
		mark := 0
		if obs != nil && p.shard >= 0 {
			mark = obs.SegmentMark(p.shard)
		}
		p.waveActs = append(p.waveActs, waveAct{kind: actDone, at: p.local, mark: mark})
	}
}

// replayStep reconstructs the serial bookkeeping of one wave segment. It
// runs as an ordinary queue event at exactly the (time, seq) the serial
// engine would have dispatched the segment's wake, so the sequence numbers
// it consumes — buffered Proc.At requests first, then the segment-ending
// skip or park — are the serial ones, and the segment's trace emissions
// splice into the main stream at the serial position.
func (e *Engine) replayStep(p *Proc) {
	obs := e.intra.obs
	for {
		if p.waveActIdx >= len(p.waveActs) {
			panic(fmt.Sprintf("sim: wave segment of proc %s at %d has no terminating park",
				p.name, e.now))
		}
		a := p.waveActs[p.waveActIdx]
		p.waveActIdx++
		if a.kind == actAt {
			if a.at < e.now {
				panic(fmt.Sprintf("sim: event scheduled at %d before now %d by proc %s",
					a.at, e.now, p.name))
			}
			e.seq++
			e.pushEvent(event{at: a.at, seq: e.seq, fn: a.fn})
			continue
		}
		// Segment boundary: flush its emissions, then schedule what the
		// serial segment's park would have.
		if obs != nil && p.shard >= 0 {
			obs.SegmentFlush(p.shard, p.wavePrevMark, a.mark)
			p.wavePrevMark = a.mark
		}
		switch a.kind {
		case actSkip:
			e.seq++
			e.pushEvent(event{at: a.at, seq: e.seq, fn: func() { e.replayStep(p) }})
		case actParkPure, actParkEffect:
			e.seq++
			e.pushEvent(event{at: a.at, seq: e.seq, proc: p,
				wakeSeq: p.wakeSeq, pure: a.kind == actParkPure})
		case actWait, actDone:
			// No wake event: an indefinite Wait needs an external Wake, a
			// finished body never runs again.
		case actResume:
			// In-step effect sync: serially its effects applied inline during
			// this very dispatch, so resume the proc live — it consumes no
			// sequence number and continues serially from here.
			p.dispatch()
		}
		return
	}
}
