package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestQueueEquivalence drives quadQueue and refQueue with identical
// randomized push/pop workloads (fixed seed: the test itself is
// deterministic) and checks both against a sorted-slice oracle. The engine
// clock follows the dispatch rule — it advances to every popped event's
// timestamp — so the quadQueue's now-FIFO path is exercised heavily.
func TestQueueEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var fast quadQueue
		var ref refQueue
		var oracle []event
		var now Time
		var seq uint64

		push := func(at Time) {
			seq++
			ev := event{at: at, seq: seq}
			fast.push(ev, now)
			ref.push(ev)
			oracle = append(oracle, ev)
		}
		pop := func() {
			sort.Slice(oracle, func(i, j int) bool { return eventLess(oracle[i], oracle[j]) })
			want := oracle[0]
			oracle = oracle[1:]
			fh, okF := fast.head()
			rh, okR := ref.head()
			if !okF || !okR || !sameEvent(fh, want) || !sameEvent(rh, want) {
				t.Fatalf("trial %d: head fast=%v(%v) ref=%v(%v), want %v", trial, fh, okF, rh, okR, want)
			}
			fp, rp := fast.pop(), ref.pop()
			if !sameEvent(fp, want) || !sameEvent(rp, want) {
				t.Fatalf("trial %d: pop fast=%v ref=%v, want %v", trial, fp, rp, want)
			}
			if fp.at < now {
				t.Fatalf("trial %d: time went backwards: %d < %d", trial, fp.at, now)
			}
			now = fp.at
		}

		for op := 0; op < 400; op++ {
			if len(oracle) == 0 || rng.Intn(3) != 0 {
				// Bias toward now-scheduling to stress the FIFO path.
				at := now
				if rng.Intn(2) == 0 {
					at += Time(rng.Intn(100))
				}
				push(at)
			} else {
				pop()
			}
		}
		for len(oracle) > 0 {
			pop()
		}
		if fast.len() != 0 || ref.len() != 0 {
			t.Fatalf("trial %d: queues not drained: fast=%d ref=%d", trial, fast.len(), ref.len())
		}
	}
}

// sameEvent compares the ordering identity of two events (the fn field is
// not comparable).
func sameEvent(a, b event) bool { return a.at == b.at && a.seq == b.seq }

// TestQueueFIFOOrder checks the append fast path preserves insertion order
// among same-time events, including against heap entries scheduled for that
// time earlier (which must dispatch first: smaller sequence numbers).
func TestQueueFIFOOrder(t *testing.T) {
	var q quadQueue
	// Scheduled before the clock reaches 100: goes to the heap.
	q.push(event{at: 100, seq: 1}, 0)
	q.push(event{at: 0, seq: 2}, 0)
	if got := q.pop(); got.seq != 2 {
		t.Fatalf("pop seq = %d, want 2", got.seq)
	}
	// Clock now at 100: same-time pushes take the FIFO.
	q.push(event{at: 100, seq: 3}, 100)
	q.push(event{at: 100, seq: 4}, 100)
	for want := uint64(1); want <= 4; want++ {
		if want == 2 {
			continue
		}
		if got := q.pop(); got.seq != want {
			t.Fatalf("pop seq = %d, want %d", got.seq, want)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty: %d", q.len())
	}
}

// BenchmarkEngineSchedule measures raw schedule/dispatch throughput: each
// iteration pushes one event through After and dispatches one, holding the
// queue at a realistic depth.
func BenchmarkEngineSchedule(b *testing.B) {
	for _, depth := range []int{16, 1024} {
		b.Run(benchName("depth", depth), func(b *testing.B) {
			e := NewEngine()
			for i := 0; i < depth; i++ {
				e.At(Time(i), func() {})
			}
			nop := func() {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.After(Duration(i%7), nop)
				ev := e.qPop()
				e.now = ev.at
			}
		})
	}
}

// BenchmarkEngineScheduleAtNow isolates the FIFO append fast path.
func BenchmarkEngineScheduleAtNow(b *testing.B) {
	e := NewEngine()
	nop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(0, nop)
		e.qPop()
	}
}

func benchName(prefix string, n int) string {
	if n >= 1024 {
		return prefix + "1k"
	}
	return prefix + "16"
}
