package sim

import "testing"

// These tests cover the eventcount extension (Seq/WaitSeq/WaitAnySeq) that
// closes the lost-wakeup window for waiters whose condition checks
// themselves park (mailbox scans, iRCCE progress passes).

func TestWaitSeqSkipsParkAfterFire(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	resumed := false
	e.NewProc("waiter", 0, func(p *Proc) {
		seq := sig.Seq()
		// Simulate a scan that parks while the producer fires.
		p.Advance(1000)
		p.Sync()
		// By now the fire event (at t=500) has executed: WaitSeq must not
		// park, or we would sleep forever (nobody fires again).
		sig.WaitSeq(p, seq)
		resumed = true
	})
	e.At(500, func() { sig.Fire(500) })
	e.Run()
	e.Shutdown()
	if !resumed {
		t.Fatal("WaitSeq parked through a fire that happened mid-scan")
	}
}

func TestWaitSeqParksWhenNoFire(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	stage := 0
	e.NewProc("waiter", 0, func(p *Proc) {
		seq := sig.Seq()
		stage = 1
		sig.WaitSeq(p, seq) // nothing fired: must park until the producer
		stage = 2
	})
	e.NewProc("producer", 0, func(p *Proc) {
		p.Advance(10_000)
		p.Sync()
		if stage != 1 {
			t.Errorf("waiter at stage %d before fire, want 1 (parked)", stage)
		}
		sig.Fire(p.LocalTime())
	})
	e.Run()
	e.Shutdown()
	if stage != 2 {
		t.Fatalf("waiter never resumed (stage %d)", stage)
	}
}

func TestWaitAnySeqAnySignalWakes(t *testing.T) {
	e := NewEngine()
	a, b := NewSignal(e), NewSignal(e)
	woke := false
	e.NewProc("waiter", 0, func(p *Proc) {
		seqs := []uint64{a.Seq(), b.Seq()}
		WaitAnySeq(p, []*Signal{a, b}, seqs)
		woke = true
	})
	e.At(300, func() { b.Fire(300) }) // only the second signal fires
	e.Run()
	e.Shutdown()
	if !woke {
		t.Fatal("WaitAnySeq missed a fire on the second signal")
	}
}

func TestWaitAnySeqStaleSeqReturnsImmediately(t *testing.T) {
	e := NewEngine()
	a := NewSignal(e)
	order := []string{}
	e.NewProc("waiter", 0, func(p *Proc) {
		seqs := []uint64{a.Seq()}
		p.Advance(1000)
		p.Sync() // the fire at t=100 executes during this park
		order = append(order, "pre-wait")
		WaitAnySeq(p, []*Signal{a}, seqs)
		order = append(order, "post-wait")
	})
	e.At(100, func() { a.Fire(100) })
	e.Run()
	e.Shutdown()
	if len(order) != 2 || order[1] != "post-wait" {
		t.Fatalf("order = %v", order)
	}
	// And it must not have taken a wake from anyone: engine time is the
	// waiter's own 1000.
	if e.Now() != 1000 {
		t.Fatalf("engine at %d, want 1000", e.Now())
	}
}

func TestSeqCountsFires(t *testing.T) {
	e := NewEngine()
	sig := NewSignal(e)
	sig.Fire(10)
	sig.Fire(20)
	e.Run()
	if sig.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", sig.Seq())
	}
}
