package perfetto

import (
	"bytes"
	"encoding/json"
	"testing"

	"metalsvm/internal/profile"
	"metalsvm/internal/trace"
)

// decoded mirrors the trace-event schema for validation.
type decoded struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		PID  int     `json:"pid"`
		TID  int32   `json:"tid"`
		ID   string  `json:"id"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func export(t *testing.T, events []trace.Event, spans []profile.Span) decoded {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, events, spans); err != nil {
		t.Fatal(err)
	}
	var d decoded
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	return d
}

// TestSchemaAndMonotonicTracks: the export is valid trace-event JSON, every
// referenced track is named, and within each (track, phase) the timestamps
// are monotonic.
func TestSchemaAndMonotonicTracks(t *testing.T) {
	// Events arrive in emission order: per-core monotonic, globally not.
	events := []trace.Event{
		{At: 3_000_000, Core: 1, Kind: trace.KindBarrier},
		{At: 1_000_000, Core: 0, Kind: trace.KindFault, Arg1: 0x1000},
		{At: 2_000_000, Core: 0, Kind: trace.KindFirstTouch, Arg1: 1, Arg2: 7},
	}
	spans := []profile.Span{
		{Core: 1, Bucket: profile.BarrierWait, Start: 2_500_000, End: 3_000_000},
		{Core: 0, Bucket: profile.FaultHandling, Start: 1_000_000, End: 2_000_000},
		{Core: 0, Bucket: profile.CacheStall, Start: 2_200_000, End: 2_400_000},
	}
	d := export(t, events, spans)
	if d.DisplayTimeUnit == "" {
		t.Error("no displayTimeUnit")
	}
	named := map[int32]bool{}
	type track struct {
		tid int32
		ph  string
	}
	last := map[track]float64{}
	for _, e := range d.TraceEvents {
		if e.Ph == "M" {
			named[e.TID] = true
			continue
		}
		k := track{e.TID, e.Ph}
		if prev, ok := last[k]; ok && e.TS < prev {
			t.Errorf("track %d phase %q goes backwards: %f after %f", e.TID, e.Ph, e.TS, prev)
		}
		last[k] = e.TS
	}
	for k := range last {
		if !named[k.tid] {
			t.Errorf("track %d has events but no thread_name metadata", k.tid)
		}
	}
}

// TestFlowPairing: ownership and mail hand-offs become s/f arrow pairs with
// matching ids, source before destination.
func TestFlowPairing(t *testing.T) {
	events := []trace.Event{
		// Core 2 requests page 7 from core 0; core 0 transfers it to core 2.
		{At: 100_000, Core: 2, Kind: trace.KindOwnerRequest, Arg1: 7, Arg2: 0},
		{At: 300_000, Core: 0, Kind: trace.KindOwnerTransfer, Arg1: 7, Arg2: 2},
		// Core 0 mails type 5 to core 1, which consumes it.
		{At: 150_000, Core: 0, Kind: trace.KindMailSend, Arg1: 1, Arg2: 5},
		{At: 250_000, Core: 1, Kind: trace.KindMailRecv, Arg1: 0, Arg2: 5},
		// An unmatched request must not produce a dangling arrow.
		{At: 400_000, Core: 3, Kind: trace.KindOwnerRequest, Arg1: 9, Arg2: 0},
	}
	d := export(t, events, nil)
	starts := map[string]float64{}
	ends := map[string]float64{}
	for _, e := range d.TraceEvents {
		switch e.Ph {
		case "s":
			starts[e.ID] = e.TS
		case "f":
			ends[e.ID] = e.TS
		}
	}
	if len(starts) != 2 || len(ends) != 2 {
		t.Fatalf("arrows: %d starts, %d ends (want 2 each)", len(starts), len(ends))
	}
	for id, s := range starts {
		f, ok := ends[id]
		if !ok {
			t.Errorf("arrow %q has no finish", id)
			continue
		}
		if f < s {
			t.Errorf("arrow %q finishes (%f) before it starts (%f)", id, f, s)
		}
	}
}

// TestDeterministicOutput: two exports of the same input are byte-identical.
func TestDeterministicOutput(t *testing.T) {
	events := []trace.Event{
		{At: 100, Core: 1, Kind: trace.KindMailSend, Arg1: 0, Arg2: 3},
		{At: 200, Core: 0, Kind: trace.KindMailRecv, Arg1: 1, Arg2: 3},
	}
	spans := []profile.Span{{Core: 0, Bucket: profile.MailboxWait, Start: 50, End: 150}}
	var a, b bytes.Buffer
	if err := Write(&a, events, spans); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, events, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("export is not deterministic")
	}
}

func TestEmptyExport(t *testing.T) {
	d := export(t, nil, nil)
	if len(d.TraceEvents) != 0 {
		t.Fatalf("empty export has %d events", len(d.TraceEvents))
	}
}
