// Package perfetto exports a simulation run as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// The export builds one track (pid 0, tid = core id) per core:
//
//   - the profiler's non-compute spans become complete ("X") events, so a
//     core's timeline shows where its time went (gaps are compute);
//   - trace.Buffer events become instant ("i") events on the core that
//     emitted them;
//   - the SVM ownership protocol and the mailbox are stitched with flow
//     arrows ("s"/"f"): fault → owner request → matching ownership transfer
//     on the owner's core, and every mail send → its consumption.
//
// Timestamps are microseconds (the trace-event convention) converted from
// the simulator's picoseconds; events are emitted sorted per track, so the
// file doubles as a schema-stable artifact for tests and CI uploads.
package perfetto

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"metalsvm/internal/profile"
	"metalsvm/internal/sim"
	"metalsvm/internal/trace"
)

// event is one trace-event object. Field order follows the trace-event
// documentation; encoding/json emits struct fields in declaration order and
// sorts Args keys, so the output is deterministic.
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// file is the JSON object format of a trace-event file.
type file struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// us converts simulator picoseconds to trace-event microseconds.
func us(t sim.Time) float64 { return float64(t) / 1e6 }

// Write emits the trace-event JSON for a run's trace events and profiler
// spans. Either input may be empty.
func Write(w io.Writer, events []trace.Event, spans []profile.Span) error {
	var out []event

	// Name the tracks: one thread per core that appears anywhere.
	cores := map[int32]bool{}
	//metalsvm:deterministic — keys are collected, then sorted below
	for _, e := range events {
		cores[e.Core] = true
	}
	for _, s := range spans {
		cores[s.Core] = true
	}
	ids := make([]int32, 0, len(cores))
	//metalsvm:deterministic — keys are collected, then sorted below
	for id := range cores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out = append(out, event{
			Name: "thread_name", Ph: "M", TID: id,
			Args: map[string]any{"name": fmt.Sprintf("core %d", id)},
		})
	}

	// Profiler spans: complete events, sorted per track (the profiler
	// records them in per-core chronological order already; a stable sort
	// by core groups the tracks without reordering within one).
	spans = append([]profile.Span(nil), spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Core < spans[j].Core })
	for _, s := range spans {
		d := us(s.End - s.Start)
		out = append(out, event{
			Name: s.Bucket.String(), Cat: "profile", Ph: "X",
			TS: us(s.Start), Dur: &d, TID: s.Core,
		})
	}

	// Trace events: instants, sorted per (core, time) so every track's
	// timestamps are monotonic.
	events = append([]trace.Event(nil), events...)
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Core != events[j].Core {
			return events[i].Core < events[j].Core
		}
		return events[i].At < events[j].At
	})
	for _, e := range events {
		out = append(out, event{
			Name: e.Kind.String(), Cat: "protocol", Ph: "i", S: "t",
			TS: us(e.At), TID: e.Core,
			Args: map[string]any{"arg1": e.Arg1, "arg2": e.Arg2},
		})
	}

	out = append(out, flows(events)...)

	return json.NewEncoder(w).Encode(file{TraceEvents: out, DisplayTimeUnit: "ns"})
}

// flows builds the protocol arrows. Pairing walks the events in global
// time order and matches each start with the first plausible end after it.
func flows(events []trace.Event) []event {
	ordered := append([]trace.Event(nil), events...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })

	var out []event
	seq := 0
	arrow := func(name string, a, b trace.Event) {
		id := fmt.Sprintf("%s-%d", name, seq)
		seq++
		out = append(out, event{
			Name: name, Cat: "svm", Ph: "s", TS: us(a.At), TID: a.Core, ID: id,
		}, event{
			Name: name, Cat: "svm", Ph: "f", BP: "e", TS: us(b.At), TID: b.Core, ID: id,
		})
	}

	// Each start event queues under a key; the first matching end event
	// after it dequeues and draws the arrow. Maps are only keyed into, never
	// ranged over, and the walk order is the deterministic time order, so
	// the pairing is reproducible.
	type pairKey struct{ a, b, c uint64 }
	pending := map[pairKey][]trace.Event{}
	push := func(k pairKey, e trace.Event) { pending[k] = append(pending[k], e) }
	pop := func(k pairKey) (trace.Event, bool) {
		q := pending[k]
		if len(q) == 0 {
			var none trace.Event
			return none, false
		}
		pending[k] = q[1:]
		return q[0], true
	}
	for _, e := range ordered {
		switch e.Kind {
		case trace.KindOwnerRequest:
			// Arg1 = page; an arrow ends at the transfer of that page to us.
			push(pairKey{0, e.Arg1, uint64(e.Core)}, e)
		case trace.KindOwnerTransfer:
			// Arg1 = page, Arg2 = new owner (the requester).
			if s, ok := pop(pairKey{0, e.Arg1, e.Arg2}); ok {
				arrow("ownership", s, e)
			}
		case trace.KindMailSend:
			// Arg1 = receiver, Arg2 = type.
			push(pairKey{1, e.Arg1<<16 | e.Arg2, uint64(e.Core)}, e)
		case trace.KindMailRecv:
			// Arg1 = sender, Arg2 = type.
			if s, ok := pop(pairKey{1, uint64(e.Core)<<16 | e.Arg2, e.Arg1}); ok {
				arrow("mail", s, e)
			}
		}
	}
	return out
}
