package core

import (
	"testing"

	"metalsvm/internal/apps/laplace"
	"metalsvm/internal/svm"
)

func TestDomainsValidation(t *testing.T) {
	if _, err := NewDomains(smallChip(), nil); err == nil {
		t.Error("zero domains accepted")
	}
	// Overlapping memberships.
	if _, err := NewDomains(smallChip(), []DomainSpec{
		{Members: []int{0, 1}},
		{Members: []int{1, 2}},
	}); err == nil {
		t.Error("overlapping domains accepted")
	}
	// Explicit page ranges are the constructor's job.
	bad := svm.DefaultConfig(svm.Strong)
	bad.PageLo, bad.PageHi = 1, 10
	if _, err := NewDomains(smallChip(), []DomainSpec{{Members: []int{0}, SVM: &bad}}); err == nil {
		t.Error("explicit page range accepted")
	}
}

// TestDomainsIsolation runs two independent SVM domains on one chip and
// checks that their allocations land in disjoint physical ranges and their
// data never bleeds across.
func TestDomainsIsolation(t *testing.T) {
	ds, err := NewDomains(smallChip(), []DomainSpec{
		{Members: []int{0, 1}},
		{Members: []int{24, 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	layout := ds.Chip.Layout()
	type obs struct {
		paddr uint32
		read  uint64
	}
	results := map[int]obs{}
	ds.RunAll(func(domain int, env *Env) {
		base := env.SVM.Alloc(4096)
		lead := env.K.Index() == 0
		if lead {
			env.Core().Store64(base, uint64(1000+domain))
		}
		env.SVM.Barrier()
		e, _ := env.Core().Table.Lookup(base)
		results[env.K.ID()] = obs{
			paddr: e.PhysAddr(base),
			read:  env.Core().Load64(base),
		}
	})
	if len(results) != 4 {
		t.Fatalf("only %d cores reported", len(results))
	}
	// Same virtual base in both domains, but disjoint physical frames.
	if results[0].paddr == results[24].paddr {
		t.Fatal("domains share a physical frame")
	}
	for _, id := range []int{0, 1} {
		if results[id].read != 1000 {
			t.Errorf("domain 0 core %d read %d", id, results[id].read)
		}
	}
	for _, id := range []int{24, 30} {
		if results[id].read != 1001 {
			t.Errorf("domain 1 core %d read %d", id, results[id].read)
		}
	}
	// The frames must come from each domain's own page slice.
	half := layout.SharedFrames() / 2
	f0 := layout.SharedFrameOf(results[0].paddr)
	f1 := layout.SharedFrameOf(results[24].paddr)
	if f0 >= half {
		t.Errorf("domain 0 frame %d outside its slice [1,%d)", f0, half)
	}
	if f1 < half {
		t.Errorf("domain 1 frame %d outside its slice [%d,...)", f1, half)
	}
}

// TestDomainsConcurrentLaplace is the flagship integration test: two
// coherency domains each solve an independent Laplace instance — different
// consistency models, different sizes — concurrently on one chip, and both
// match the serial reference bit-exactly.
func TestDomainsConcurrentLaplace(t *testing.T) {
	strongCfg := svm.DefaultConfig(svm.Strong)
	lazyCfg := svm.DefaultConfig(svm.LazyRelease)
	ds, err := NewDomains(smallChip(), []DomainSpec{
		{Members: []int{0, 1, 2}, SVM: &strongCfg},
		{Members: []int{30, 40}, SVM: &lazyCfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	pA := laplace.Params{Rows: 12, Cols: 16, Iters: 6, TopTemp: 100}
	pB := laplace.Params{Rows: 16, Cols: 12, Iters: 9, TopTemp: 50}
	appA := laplace.NewSVM(pA, laplace.SVMOptions{})
	appB := laplace.NewSVM(pB, laplace.SVMOptions{})
	ds.RunAll(func(domain int, env *Env) {
		if domain == 0 {
			appA.Main(env.SVM)
		} else {
			appB.Main(env.SVM)
		}
	})
	if got, want := appA.Result().Checksum, laplace.ReferenceChecksum(pA); got != want {
		t.Errorf("domain 0 checksum %v, want %v", got, want)
	}
	if got, want := appB.Result().Checksum, laplace.ReferenceChecksum(pB); got != want {
		t.Errorf("domain 1 checksum %v, want %v", got, want)
	}
}

func TestDomainsDoubleRunPanics(t *testing.T) {
	ds, err := NewDomains(smallChip(), []DomainSpec{{Members: []int{0}}})
	if err != nil {
		t.Fatal(err)
	}
	ds.RunAll(func(int, *Env) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second run accepted")
		}
	}()
	ds.RunAll(func(int, *Env) {})
}
