package core_test

import (
	"fmt"

	"metalsvm/internal/core"
	"metalsvm/internal/cpu"
	"metalsvm/internal/scc"
	"metalsvm/internal/svm"
)

func exampleChip() *scc.Config {
	cfg := scc.DefaultConfig()
	cfg.PrivateMemPerCore = 1 << 20
	cfg.SharedMem = 16 << 20
	return &cfg
}

// The canonical MetalSVM session: boot a cluster, allocate shared memory
// collectively, and let the SVM system move data between the non-coherent
// cores.
func ExampleMachine() {
	m, err := core.NewMachine(core.Options{
		Chip:    exampleChip(),
		Members: []int{0, 30},
	})
	if err != nil {
		panic(err)
	}
	m.RunAll(func(env *core.Env) {
		base := env.SVM.Alloc(4096)
		if env.K.ID() == 0 {
			env.Core().Store64(base, 42)
		}
		env.SVM.Barrier()
		if env.K.ID() == 30 {
			fmt.Println("core 30 reads", env.Core().Load64(base))
		}
	})
	// Output: core 30 reads 42
}

// Two independent coherency domains share one chip: same virtual layout,
// disjoint physical frames, no interference.
func ExampleDomains() {
	lazy := svm.DefaultConfig(svm.LazyRelease)
	ds, err := core.NewDomains(exampleChip(), []core.DomainSpec{
		{Members: []int{0, 1}},
		{Members: []int{30, 31}, SVM: &lazy},
	})
	if err != nil {
		panic(err)
	}
	reads := make(chan string, 2)
	ds.RunAll(func(domain int, env *core.Env) {
		base := env.SVM.Alloc(4096)
		if env.K.Index() == 0 {
			env.Core().Store64(base, uint64(1000+domain))
		}
		env.SVM.Barrier()
		if env.K.Index() == 1 {
			reads <- fmt.Sprintf("domain %d sees %d", domain, env.Core().Load64(base))
		}
	})
	close(reads)
	for s := range reads {
		fmt.Println(s)
	}
	// Unordered output:
	// domain 0 sees 1000
	// domain 1 sees 1001
}

// The message-passing comparison system: bare cores with iRCCE.
func ExampleBaseline() {
	b, err := core.NewBaseline(exampleChip(), []int{0, 47})
	if err != nil {
		panic(err)
	}
	got := make([]byte, 5)
	b.Run(func(rank int, c *cpu.Core) {
		if rank == 0 {
			b.Comm.Send(0, []byte("hello"), 1)
		} else {
			b.Comm.Recv(1, got, 0)
		}
	})
	fmt.Println(string(got))
	// Output: hello
}
