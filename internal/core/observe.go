package core

import (
	"fmt"
	"io"

	"metalsvm/internal/cache"
	"metalsvm/internal/faults"
	"metalsvm/internal/kernel"
	"metalsvm/internal/metrics"
	"metalsvm/internal/perfetto"
	"metalsvm/internal/profile"
	"metalsvm/internal/racecheck"
	"metalsvm/internal/sancheck"
	"metalsvm/internal/scc"
	"metalsvm/internal/svm"
	"metalsvm/internal/svm/repldir"
	"metalsvm/internal/trace"
)

// Instrumentation is the single configuration point for everything that
// observes a run without perturbing it: event tracing, race checking, the
// metrics registry, and the cycle-attribution profiler. Every observer
// follows the same discipline — nil-checked hooks that charge no simulated
// cycles — so a run with any combination enabled is bit-identical to an
// uninstrumented one (asserted by the equivalence tests and sccbench
// -check).
//
// Pass it via Options.Observe (or Domains.Observe); read the results from
// the Observation after the run.
type Instrumentation struct {
	// TraceCapacity, when positive, installs a protocol-event ring buffer of
	// that capacity on the chip (unless one is already present).
	TraceCapacity int
	// Race, when non-nil, enables the happens-before race checker.
	Race *racecheck.Config
	// Sanitize, when non-nil, enables the sanitizer suite: the SVM shadow-
	// memory checker, the Eraser-style lockset checker and the lock-order
	// graph. The zero Config enables every class.
	Sanitize *sancheck.Config
	// Metrics enables the end-of-run metrics snapshot harvested from every
	// subsystem's counters.
	Metrics bool
	// Profile, when non-nil, enables the simulated-cycle profiler. The zero
	// Config selects defaults.
	Profile *profile.Config
}

// enabled reports whether any observer is requested.
func (i Instrumentation) enabled() bool {
	return i.TraceCapacity > 0 || i.Race != nil || i.Sanitize != nil ||
		i.Metrics || i.Profile != nil
}

// Observation carries a run's instrumentation state and, after Finish, its
// artifacts. Accessors are nil-safe so callers can hold a nil *Observation
// when instrumentation is off.
type Observation struct {
	chip     *scc.Chip
	clusters []*kernel.Cluster
	systems  []*svm.System
	dirs     []*repldir.System

	race    *racecheck.Checker
	san     *sancheck.Checker
	prof    *profile.Profiler
	metrics bool

	finished bool
	snapshot *metrics.Snapshot
	report   *profile.Report
}

// Observe wires the requested observers into a built (not yet run) system:
// the chip, its kernel clusters and their SVM systems. Machine and Domains
// call it through Options.Observe; benchmark harnesses that assemble
// clusters by hand call it directly. Call Finish after the engine has run.
func Observe(cfg Instrumentation, chip *scc.Chip,
	clusters []*kernel.Cluster, systems []*svm.System) *Observation {
	if !cfg.enabled() {
		return nil
	}
	o := &Observation{chip: chip, clusters: clusters, systems: systems, metrics: cfg.Metrics}
	if cfg.TraceCapacity > 0 && chip.Tracer() == nil {
		chip.SetTracer(trace.NewBuffer(cfg.TraceCapacity))
	}
	if cfg.Race != nil {
		o.race = wireRaceChecker(*cfg.Race, chip, clusters, systems)
	}
	if cfg.Sanitize != nil {
		// Wired after the race checker on purpose: the sanitizer's adapters
		// take over the single-slot cpu and svm hooks and forward to it.
		o.san = wireSanChecker(*cfg.Sanitize, chip, clusters, systems, o.race)
	}
	if cfg.Profile != nil {
		o.prof = profile.New(chip.Cores(), *cfg.Profile)
		for _, cl := range clusters {
			cl.SetProfiler(o.prof)
			for _, id := range cl.Members() {
				chip.Core(id).SetProfiler(o.prof)
			}
		}
		for _, sys := range systems {
			sys.SetProfiler(o.prof)
		}
	}
	return o
}

// AddDirectory registers a replicated ownership directory so its protocol
// counters join the metrics harvest. Nil-safe on both sides, so callers can
// pass their (possibly nil) directory unconditionally.
func (o *Observation) AddDirectory(d *repldir.System) {
	if o == nil || d == nil {
		return
	}
	o.dirs = append(o.dirs, d)
}

// Finish closes out the observation after the engine has run: it finalizes
// every profiled core at its final local time and harvests the metrics
// snapshot. Idempotent and nil-safe; Machine.Run and Domains.Run call it
// automatically.
func (o *Observation) Finish() {
	if o == nil || o.finished {
		return
	}
	o.finished = true
	for _, cl := range o.clusters {
		for _, id := range cl.Members() {
			o.prof.Finish(id, o.chip.Core(id).Proc().LocalTime())
		}
	}
	if o.prof != nil {
		o.report = o.prof.Report()
	}
	if o.san != nil {
		o.san.Finalize()
	}
	if o.metrics {
		o.snapshot = o.harvest()
	}
}

// Race returns the race checker (nil when not enabled).
func (o *Observation) Race() *racecheck.Checker {
	if o == nil {
		return nil
	}
	return o.race
}

// San returns the sanitizer checker (nil when not enabled).
func (o *Observation) San() *sancheck.Checker {
	if o == nil {
		return nil
	}
	return o.san
}

// Profiler returns the live profiler (nil when not enabled); most callers
// want ProfileReport instead.
func (o *Observation) Profiler() *profile.Profiler {
	if o == nil {
		return nil
	}
	return o.prof
}

// ProfileReport returns the per-core time breakdown (nil before Finish or
// when the profiler was not enabled).
func (o *Observation) ProfileReport() *profile.Report {
	if o == nil {
		return nil
	}
	return o.report
}

// MetricsSnapshot returns the harvested metrics (nil before Finish or when
// Metrics was not enabled).
func (o *Observation) MetricsSnapshot() *metrics.Snapshot {
	if o == nil {
		return nil
	}
	return o.snapshot
}

// TraceEvents returns the retained trace events (see trace.Buffer.Events
// for the ordering contract; nil when tracing is off).
func (o *Observation) TraceEvents() []trace.Event {
	if o == nil {
		return nil
	}
	return o.chip.Tracer().Events()
}

// TraceSummary summarizes the retained trace events, including the ring's
// drop count.
func (o *Observation) TraceSummary() trace.Summary {
	if o == nil {
		return trace.Summary{}
	}
	return o.chip.Tracer().Summary()
}

// WritePerfetto exports the run as Chrome trace-event JSON (Perfetto-
// loadable): profiler spans as per-core timelines, trace events as instants,
// and the SVM protocol's mail and ownership hand-offs as flow arrows.
func (o *Observation) WritePerfetto(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("core: no observation to export")
	}
	return perfetto.Write(w, o.TraceEvents(), o.prof.Spans())
}

// harvest fills a metrics registry from every subsystem's counters. The
// names are stable "subsystem.metric" keys; values aggregate over the
// observed clusters' members.
func (o *Observation) harvest() *metrics.Snapshot {
	r := metrics.NewRegistry()

	ms := o.chip.MeshStats()
	r.Counter("mesh.ddr_reads").Add(ms.DDRReads)
	r.Counter("mesh.ddr_writes").Add(ms.DDRWrites)
	r.Counter("mesh.mpb_accesses").Add(ms.MPBAccesses)
	r.Counter("mesh.tas_accesses").Add(ms.TASAccesses)
	r.Counter("mesh.ipis").Add(ms.IPIs)
	hops := r.Histogram("mesh.hops")
	for h, n := range ms.HopHist {
		hops.ObserveN(uint64(h), n)
	}

	for _, cl := range o.clusters {
		mbs := cl.Mailbox().Stats()
		r.Counter("mailbox.sends").Add(mbs.Sends)
		r.Counter("mailbox.busy_waits").Add(mbs.BusyWaits)
		r.Counter("mailbox.checks").Add(mbs.Checks)
		r.Counter("mailbox.recvs").Add(mbs.Recvs)
		r.Counter("mailbox.ipi_wakeups").Add(mbs.IPIs)
		r.Counter("mailbox.retransmits").Add(mbs.Retransmits)
		r.Counter("mailbox.renudges").Add(mbs.Renudges)
		r.Counter("mailbox.corrupt_drops").Add(mbs.CorruptDrops)
		r.Counter("mailbox.dup_frames").Add(mbs.DupFrames)
		r.Counter("mailbox.short_frames").Add(mbs.ShortFrames)
		r.Counter("mailbox.dead_drops").Add(mbs.DeadDrops)
		for _, id := range cl.Members() {
			c := o.chip.Core(id)
			cs := c.Stats()
			r.Counter("cpu.loads").Add(cs.Loads)
			r.Counter("cpu.stores").Add(cs.Stores)
			r.Counter("cpu.faults").Add(cs.Faults)
			r.Counter("cpu.irqs").Add(cs.IRQs)
			r.Counter("cpu.wcb_read_stalls").Add(cs.WCBROBs)
			r.Counter("cpu.tlb_hits").Add(cs.TLBHits)
			r.Counter("cpu.tlb_misses").Add(cs.TLBMisses)
			harvestCache(r, "cache.l1", c.L1().Stats())
			if c.L2() != nil {
				harvestCache(r, "cache.l2", c.L2().Stats())
			}
			ws := c.WCB().Stats()
			r.Counter("wcb.writes").Add(ws.Writes)
			r.Counter("wcb.flushes").Add(ws.Flushes)
			r.Counter("wcb.full_lines").Add(ws.FullLines)
			r.Counter("wcb.read_stalls").Add(ws.ReadStalls)
			if k := cl.Kernel(id); k != nil {
				ks := k.Stats()
				r.Counter("kernel.timer_ticks").Add(ks.TimerTicks)
				r.Counter("kernel.ipis").Add(ks.IPIs)
				r.Counter("kernel.dispatched").Add(ks.Dispatched)
				r.Counter("kernel.barriers").Add(ks.Barriers)
				r.Counter("kernel.rescues").Add(ks.Rescues)
			}
		}
	}
	for _, sys := range o.systems {
		for _, id := range sys.Cluster().Members() {
			h := sys.Handle(id)
			if h == nil {
				continue
			}
			ss := h.Stats()
			r.Counter("svm.faults").Add(ss.Faults)
			r.Counter("svm.first_touches").Add(ss.FirstTouches)
			r.Counter("svm.map_existing").Add(ss.MapExisting)
			r.Counter("svm.owner_requests").Add(ss.OwnerRequests)
			r.Counter("svm.owner_served").Add(ss.OwnerServed)
			r.Counter("svm.forwards").Add(ss.Forwards)
			r.Counter("svm.retries").Add(ss.Retries)
			r.Counter("svm.locks").Add(ss.Locks)
			r.Counter("svm.lock_waits").Add(ss.LockWaits)
			r.Counter("svm.barriers").Add(ss.Barriers)
			r.Counter("svm.tas_backoffs").Add(ss.TASBackoffs)
			r.Counter("svm.owner_backoffs").Add(ss.OwnerBackoffs)
		}
	}
	for _, d := range o.dirs {
		ds := d.Stats()
		r.Counter("dir.requests").Add(ds.Requests)
		r.Counter("dir.lookups").Add(ds.Lookups)
		r.Counter("dir.claims").Add(ds.Claims)
		r.Counter("dir.get_owners").Add(ds.GetOwners)
		r.Counter("dir.transfers").Add(ds.Transfers)
		r.Counter("dir.reclaims").Add(ds.Reclaims)
		r.Counter("dir.forgets").Add(ds.Forgets)
		r.Counter("dir.redirects").Add(ds.Redirects)
		r.Counter("dir.timeouts").Add(ds.Timeouts)
		r.Counter("dir.client_retries").Add(ds.ClientRetries)
		r.Counter("dir.commits").Add(ds.Commits)
		r.Counter("dir.prepares").Add(ds.Prepares)
		r.Counter("dir.prepare_oks").Add(ds.PrepareOKs)
		r.Counter("dir.solo_commits").Add(ds.SoloCommits)
		r.Counter("dir.view_changes").Add(ds.ViewChanges)
		r.Counter("dir.reconstructions").Add(ds.Reconstructions)
		r.Counter("dir.fenced").Add(ds.Fenced)
		r.Counter("dir.orphan_reclaims").Add(ds.OrphanReclaims)
		r.Counter("dir.fetch_retries").Add(ds.FetchRetries)
		r.Counter("dir.fetch_aborts").Add(ds.FetchAborts)
	}
	if in := o.chip.FaultInjector(); in.Enabled() {
		fs := in.Stats()
		r.Counter("faults.decisions").Add(fs.Decisions)
		r.Counter("faults.injected").Add(fs.Injected())
		r.Counter("faults.stalls").Add(fs.Stalls)
		r.Counter("faults.crashes").Add(fs.Crashes)
		for rt := faults.Route(0); rt < faults.NumRoutes; rt++ {
			r.Counter("faults.drops." + rt.String()).Add(fs.Drops[rt])
			r.Counter("faults.dups." + rt.String()).Add(fs.Dups[rt])
			r.Counter("faults.delays." + rt.String()).Add(fs.Delays[rt])
			r.Counter("faults.corruptions." + rt.String()).Add(fs.Corruptions[rt])
		}
	}
	if tr := o.chip.Tracer(); tr != nil {
		r.Counter("trace.events").Add(uint64(tr.Len()))
		r.Counter("trace.dropped").Add(tr.Dropped())
	}
	return r.Snapshot()
}

// harvestCache books one cache level's counters under a name prefix.
func harvestCache(r *metrics.Registry, prefix string, s cache.Stats) {
	r.Counter(prefix + ".hits").Add(s.Hits)
	r.Counter(prefix + ".misses").Add(s.Misses)
	r.Counter(prefix + ".fills").Add(s.Fills)
	r.Counter(prefix + ".evictions").Add(s.Evictions)
	r.Counter(prefix + ".write_hits").Add(s.WriteHits)
	r.Counter(prefix + ".write_misses").Add(s.WriteMisses)
	r.Counter(prefix + ".invalidates").Add(s.Invalidates)
}
