package core

import (
	"sync"

	"metalsvm/internal/cpu"
	"metalsvm/internal/scc"
	"metalsvm/internal/sim"
)

// This file wires the engine's intra-run parallel dispatch (conservative
// time-windowed PDES, internal/sim's wave mode) into a built machine. The
// call order matters: WireIntra must run after all tracer and checker
// wiring (core.Observe, wireRaceChecker), because the tracer registered as
// the engine's wave observer is whichever one is installed at that point,
// and checker access hooks installed later would miss the serialization
// wrap below.

// WireIntra enables wave-parallel dispatch on the engine with the given
// host worker count (n <= 1 is a no-op, preserving serial dispatch bit for
// bit — trivially, since wave dispatch is bit-exact anyway). The chip's
// tracer, when present, becomes the wave observer so its event stream is
// spliced in serial order; checker access hooks, when present, are
// serialized under a mutex because pure compute segments — where loads and
// stores happen — run concurrently during a wave. For race-free workloads
// (the SVM system's contract, enforced by sccbench -check) the checkers'
// verdicts are unaffected; only the host-side order in which they observe
// accesses varies.
func WireIntra(eng *sim.Engine, chip *scc.Chip, workers int) {
	if workers <= 1 {
		return
	}
	var obs sim.WaveObserver
	if tr := chip.Tracer(); tr != nil {
		tr.EnableWaveShards(chip.Cores())
		obs = tr
	}
	var mu sync.Mutex
	for id := 0; id < chip.Cores(); id++ {
		c := chip.Core(id)
		if h := c.AccessHook(); h != nil {
			c.SetAccessHook(func(cc *cpu.Core, vaddr uint32, size int, write bool) {
				mu.Lock()
				defer mu.Unlock()
				h(cc, vaddr, size, write)
			})
		}
	}
	eng.EnableIntra(workers, obs)
}
