package core

import (
	"testing"

	"metalsvm/internal/cpu"
	"metalsvm/internal/mailbox"
	"metalsvm/internal/scc"
	"metalsvm/internal/svm"
)

func smallChip() *scc.Config {
	cfg := scc.DefaultConfig()
	cfg.PrivateMemPerCore = 1 << 20
	cfg.SharedMem = 16 << 20
	return &cfg
}

func TestFirstN(t *testing.T) {
	m := FirstN(3)
	if len(m) != 3 || m[0] != 0 || m[2] != 2 {
		t.Fatalf("FirstN(3) = %v", m)
	}
	if got := FirstN(0); len(got) != 0 {
		t.Fatalf("FirstN(0) = %v", got)
	}
}

func TestMachineDefaultsBootAllCores(t *testing.T) {
	m, err := NewMachine(Options{Chip: smallChip()})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Cluster.Members()); got != 48 {
		t.Fatalf("default members = %d, want 48", got)
	}
	if m.Mode() != mailbox.ModeIPI {
		t.Fatalf("default mode = %v, want IPI", m.Mode())
	}
}

func TestMachineRunAllSharedMemory(t *testing.T) {
	scfg := svm.DefaultConfig(svm.LazyRelease)
	m, err := NewMachine(Options{
		Chip:    smallChip(),
		SVM:     &scfg,
		Members: []int{0, 7, 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]uint64{}
	m.RunAll(func(env *Env) {
		base := env.SVM.Alloc(4096)
		if env.K.ID() == 0 {
			env.Core().Store64(base, 777)
		}
		env.SVM.Barrier()
		seen[env.K.ID()] = env.Core().Load64(base)
	})
	for id, v := range seen {
		if v != 777 {
			t.Fatalf("core %d read %d", id, v)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("only %d cores ran", len(seen))
	}
}

func TestMachineRunPerCoreMains(t *testing.T) {
	m, err := NewMachine(Options{Chip: smallChip(), Members: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	order := []int{}
	m.Run(map[int]func(*Env){
		0: func(env *Env) { order = append(order, 0) },
		1: func(env *Env) { order = append(order, 1) },
	})
	if len(order) != 2 {
		t.Fatalf("mains run = %v", order)
	}
}

func TestMachineMissingMainPanics(t *testing.T) {
	m, err := NewMachine(Options{Chip: smallChip(), Members: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("missing main accepted")
		}
	}()
	m.Run(map[int]func(*Env){0: func(env *Env) {}})
}

func TestMachineDoubleRunPanics(t *testing.T) {
	m, err := NewMachine(Options{Chip: smallChip(), Members: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	m.RunAll(func(env *Env) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run accepted")
		}
	}()
	m.RunAll(func(env *Env) {})
}

func TestMachineInvalidMembers(t *testing.T) {
	if _, err := NewMachine(Options{Chip: smallChip(), Members: []int{5, 3}}); err == nil {
		t.Fatal("unsorted members accepted")
	}
}

func TestBaselineRun(t *testing.T) {
	b, err := NewBaseline(smallChip(), []int{0, 30})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	b.Run(func(rank int, c *cpu.Core) {
		if rank == 0 {
			b.Comm.Send(0, []byte{1, 2, 3, 4}, 1)
		} else {
			b.Comm.Recv(1, got, 0)
		}
	})
	if got[3] != 4 {
		t.Fatalf("baseline transfer broken: %v", got)
	}
}

func TestBaselineInvalidCores(t *testing.T) {
	if _, err := NewBaseline(smallChip(), nil); err == nil {
		t.Fatal("empty baseline accepted")
	}
}
