package core

import (
	"metalsvm/internal/cpu"
	"metalsvm/internal/kernel"
	"metalsvm/internal/racecheck"
	"metalsvm/internal/sancheck"
	"metalsvm/internal/scc"
	"metalsvm/internal/sim"
	"metalsvm/internal/svm"
)

// This file wires the sancheck sanitizer into a booted system. It follows
// racewire.go's shape, with one twist: the cpu access hook and the svm sync
// hook are single-slot, and the race checker may already occupy them. The
// adapters below therefore multiplex — each forwards to the race checker's
// edge (when enabled) before feeding the sanitizer — so both observers see
// every event and neither perturbs the run.

// sanSVMHook feeds one SVM system's lock and ownership events to the
// sanitizer, forwarding to an inner (race) hook first. space is the system's
// index in the wired set, so lock tokens from different coherency domains
// never alias.
type sanSVMHook struct {
	k     *sancheck.Checker
	inner svm.SyncHook
	chip  *scc.Chip
	space int
}

// lockID normalizes a lock id to its physical lock word, matching
// raceSVMHook.lockKey: distinct ids that hash to the same test-and-set
// backed word really are the same lock.
func lockID(id int) int {
	return ((id % svm.LockCount) + svm.LockCount) % svm.LockCount
}

func (h sanSVMHook) LockAcquired(core, lock int) {
	if h.inner != nil {
		h.inner.LockAcquired(core, lock)
	}
	h.k.OnLockAcquire(h.space, lockID(lock), core, h.chip.Core(core).Now())
}

func (h sanSVMHook) LockReleased(core, lock int) {
	if h.inner != nil {
		h.inner.LockReleased(core, lock)
	}
	h.k.OnLockRelease(h.space, lockID(lock), core, h.chip.Core(core).Now())
}

func (h sanSVMHook) OwnershipTransferred(owner, requester int, page uint32) {
	if h.inner != nil {
		h.inner.OwnershipTransferred(owner, requester, page)
	}
}

func (h sanSVMHook) OwnershipAcquired(core int, page uint32) {
	if h.inner != nil {
		h.inner.OwnershipAcquired(core, page)
	}
	h.k.OnOwnershipAcquired(h.space, core, page)
}

// sanMemHook feeds one SVM system's region-lifecycle events (and the
// pre-panic invalid-operation callbacks) to the shadow checker.
type sanMemHook struct {
	k    *sancheck.Checker
	chip *scc.Chip
}

func (h sanMemHook) RegionAllocated(core int, base, pages uint32) {
	h.k.OnRegionAlloc(core, base, pages)
}

func (h sanMemHook) RegionFreed(core int, base, pages uint32) {
	h.k.OnRegionFree(core, base, pages, h.chip.Core(core).Now())
}

func (h sanMemHook) RegionProtected(core int, base, pages uint32) {
	h.k.OnRegionProtect(core, base, pages)
}

func (h sanMemHook) BadFree(core int, base uint32) {
	h.k.OnBadFree(core, base, h.chip.Core(core).Now())
}

func (h sanMemHook) InvalidAccess(core int, vaddr uint32, write bool) {
	h.k.OnInvalidAccess(core, vaddr, write, h.chip.Core(core).Now())
}

func (h sanMemHook) ReadOnlyWrite(core int, vaddr uint32) {
	h.k.OnReadOnlyWrite(core, vaddr, h.chip.Core(core).Now())
}

// sanTASHook feeds test-and-set transitions to the lock-order graph.
type sanTASHook struct{ k *sancheck.Checker }

func (h sanTASHook) TASAcquired(core, reg int, at sim.Time) { h.k.OnTASAcquire(core, reg, at) }
func (h sanTASHook) TASReleased(core, reg int, at sim.Time) { h.k.OnTASRelease(core, reg, at) }

// wireSanChecker creates a sanitizer over the chip and attaches it to every
// given cluster (barrier epochs), member core (access recording and
// page-table map/unmap auditing) and SVM system (region lifecycle, locks,
// ownership epochs). When race is non-nil the race checker already holds the
// single-slot cpu and svm hooks; the installed adapters forward to it first,
// so enabling both changes nothing about what either sees.
func wireSanChecker(cfg sancheck.Config, chip *scc.Chip,
	clusters []*kernel.Cluster, systems []*svm.System,
	race *racecheck.Checker) *sancheck.Checker {
	k := sancheck.NewChecker(chip.Cores(), scc.VirtSharedBase, cfg)
	for _, cl := range clusters {
		cl.SetBarrierHook(k.OnBarrier)
		for _, id := range cl.Members() {
			id := id
			chip.Core(id).SetAccessHook(func(c *cpu.Core, vaddr uint32, size int, write bool) {
				if race != nil {
					race.OnAccess(c.ID(), vaddr, size, write, c.Now())
				}
				k.OnAccess(c.ID(), vaddr, size, write, c.Now())
			})
			chip.Core(id).Table.SetMapHook(func(vaddr uint32, mapped bool) {
				k.OnMap(id, vaddr, mapped)
			})
		}
	}
	for i, sys := range systems {
		var inner svm.SyncHook
		if race != nil {
			inner = raceSVMHook{race, sys}
		}
		sys.SetSyncHook(sanSVMHook{k: k, inner: inner, chip: chip, space: i})
		sys.SetMemHook(sanMemHook{k: k, chip: chip})
	}
	chip.SetTASHook(sanTASHook{k})
	return k
}
