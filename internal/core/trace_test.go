package core

import (
	"testing"

	"metalsvm/internal/sim"
	"metalsvm/internal/svm"
	"metalsvm/internal/trace"
)

// tracedWorkload drives every trace-emitting layer: SVM faults and
// first-touch (fault, first-touch), the strong model's ownership protocol
// (owner-req, owner-transfer), kernel barriers over IPI-mode mailboxes
// (barrier, mail-send, mail-recv, ipi), and next-touch migration
// (migration).
func tracedWorkload(t *testing.T, buf *trace.Buffer) sim.Time {
	t.Helper()
	scfg := svm.DefaultConfig(svm.Strong)
	// Cores 0 and 47 sit in different quadrants, so the migration below
	// really moves the frame between memory controllers.
	m, err := NewMachine(Options{Chip: smallChip(), SVM: &scfg, Members: []int{0, 47}})
	if err != nil {
		t.Fatal(err)
	}
	m.Chip.SetTracer(buf)
	return m.RunAll(func(env *Env) {
		base := env.SVM.Alloc(4096)
		if env.K.ID() == 0 {
			env.Core().Store64(base, 1)
		}
		env.SVM.Barrier()
		if env.K.ID() == 47 {
			env.Core().Store64(base, 2) // steal ownership from core 0
		}
		env.SVM.Barrier()             // steal settles before migration arms
		env.SVM.NextTouch(base, 4096) // collective: drops every mapping
		if env.K.ID() == 47 {
			env.Core().Load64(base) // refault: migrates the frame home
		}
		env.SVM.Barrier()
	})
}

// TestNilTracerAcrossAllLayers runs the full emitting surface with no
// buffer installed: nothing may panic, and the run must cost exactly the
// same simulated time as a traced run — tracing is observation, not
// behavior.
func TestNilTracerAcrossAllLayers(t *testing.T) {
	endNil := tracedWorkload(t, nil)
	buf := trace.NewBuffer(4096)
	endBuf := tracedWorkload(t, buf)
	if endNil != endBuf {
		t.Fatalf("tracing changed simulated time: %v vs %v", endNil, endBuf)
	}
	if buf.Len() == 0 {
		t.Fatal("traced run recorded nothing")
	}
}

// TestTracerSeesEveryLayer asserts each emitting layer actually produced
// its event kinds, so the nil-safety test above really covers them all.
func TestTracerSeesEveryLayer(t *testing.T) {
	buf := trace.NewBuffer(4096)
	tracedWorkload(t, buf)
	got := map[trace.Kind]bool{}
	for _, e := range buf.Events() {
		got[e.Kind] = true
	}
	for _, k := range []trace.Kind{
		trace.KindFault, trace.KindFirstTouch, trace.KindOwnerRequest,
		trace.KindOwnerTransfer, trace.KindMailSend, trace.KindMailRecv,
		trace.KindBarrier, trace.KindMigration, trace.KindIPI,
	} {
		if !got[k] {
			t.Errorf("no %v event recorded", k)
		}
	}
}
