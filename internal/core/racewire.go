package core

import (
	"metalsvm/internal/cpu"
	"metalsvm/internal/kernel"
	"metalsvm/internal/mailbox"
	"metalsvm/internal/racecheck"
	"metalsvm/internal/scc"
	"metalsvm/internal/svm"
	"metalsvm/internal/trace"
)

// This file wires the racecheck detector into a booted system. Each
// subsystem exposes its own nil-checkable hook (cpu access hook, mailbox
// sync hook, svm sync hook); the adapters below translate those callbacks
// into the checker's acquire/release edges. Sync objects are keyed by the
// owning subsystem instance, so several clusters or SVM systems on one chip
// (coherency domains) never alias each other's locks or channels.

// raceTraceCapacity sizes the tracer auto-installed when race checking is
// enabled on a chip without one, so reports can include a timeline.
const raceTraceCapacity = 8192

type mailDepKey struct {
	mb       *mailbox.System
	from, to int
}

type mailFreeKey struct {
	mb       *mailbox.System
	from, to int
}

// raceMailHook turns mailbox activity into happens-before edges. A deposit
// is a release of the sender's history into the slot; observing the slot
// free first acquires the receiver's consumption (the sender's busy-wait on
// the flag is real synchronization through uncached MPB memory). A consume
// acquires the deposit and releases the slot back to the sender. Kernel
// barriers and the ownership protocol's request/ack mails are built from
// these sends, so their ordering falls out transitively.
type raceMailHook struct {
	k  *racecheck.Checker
	mb *mailbox.System
}

func (h raceMailHook) MailDeposited(from, to int) {
	h.k.Acquire(from, mailFreeKey{h.mb, from, to})
	h.k.Release(from, mailDepKey{h.mb, from, to})
}

func (h raceMailHook) MailConsumed(from, to int) {
	h.k.Acquire(to, mailDepKey{h.mb, from, to})
	h.k.Release(to, mailFreeKey{h.mb, from, to})
}

type svmLockKey struct {
	sys *svm.System
	id  int
}

type svmPageKey struct {
	sys *svm.System
	idx uint32
}

// raceSVMHook turns SVM lock and ownership operations into edges.
type raceSVMHook struct {
	k   *racecheck.Checker
	sys *svm.System
}

// lockKey normalizes a lock id to its physical lock word (ids are taken
// modulo svm.LockCount).
func (h raceSVMHook) lockKey(id int) svmLockKey {
	return svmLockKey{h.sys, ((id % svm.LockCount) + svm.LockCount) % svm.LockCount}
}

func (h raceSVMHook) LockAcquired(core, lock int) { h.k.Acquire(core, h.lockKey(lock)) }
func (h raceSVMHook) LockReleased(core, lock int) { h.k.Release(core, h.lockKey(lock)) }

func (h raceSVMHook) OwnershipTransferred(owner, requester int, page uint32) {
	h.k.Release(owner, svmPageKey{h.sys, page})
}

func (h raceSVMHook) OwnershipAcquired(core int, page uint32) {
	h.k.Acquire(core, svmPageKey{h.sys, page})
}

// wireRaceChecker creates a checker over the chip and attaches it to every
// given cluster (mailbox edges), SVM system (lock/ownership edges) and
// member core (access recording). A tracer is installed if absent so race
// reports carry a timeline.
func wireRaceChecker(cfg racecheck.Config, chip *scc.Chip,
	clusters []*kernel.Cluster, systems []*svm.System) *racecheck.Checker {
	k := racecheck.NewChecker(chip.Cores(), scc.VirtSharedBase, cfg)
	if chip.Tracer() == nil {
		chip.SetTracer(trace.NewBuffer(raceTraceCapacity))
	}
	k.SetTraceSource(chip.Tracer().Events)
	for _, cl := range clusters {
		cl.Mailbox().SetSyncHook(raceMailHook{k, cl.Mailbox()})
		for _, id := range cl.Members() {
			chip.Core(id).SetAccessHook(func(c *cpu.Core, vaddr uint32, size int, write bool) {
				k.OnAccess(c.ID(), vaddr, size, write, c.Now())
			})
		}
	}
	for _, sys := range systems {
		sys.SetSyncHook(raceSVMHook{k, sys})
	}
	return k
}
