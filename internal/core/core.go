// Package core is the MetalSVM facade — the paper's contribution assembled
// into one public API. It builds the simulated SCC, boots a cluster of
// MetalSVM kernels on a chosen set of cores, wires up the SVM system, and
// runs user workloads on the simulated cores.
//
// Typical use:
//
//	m, _ := core.NewMachine(core.Options{Members: core.FirstN(8)})
//	m.RunAll(func(env *core.Env) {
//	    base := env.SVM.Alloc(4 << 20)
//	    env.K.Core().Store64(base, 42)
//	    env.SVM.Barrier()
//	})
//	m.Wait()
//
// For the message-passing baseline (RCCE/iRCCE "under Linux"), use
// NewBaseline, which boots bare cores with an RCCE communicator and an
// L2-enabled private-memory environment instead of MetalSVM kernels.
package core

import (
	"fmt"
	"sort"

	"metalsvm/internal/cpu"
	"metalsvm/internal/fastpath"
	"metalsvm/internal/faults"
	"metalsvm/internal/kernel"
	"metalsvm/internal/mailbox"
	"metalsvm/internal/racecheck"
	"metalsvm/internal/rcce"
	"metalsvm/internal/scc"
	"metalsvm/internal/sim"
	"metalsvm/internal/svm"
	"metalsvm/internal/svm/repldir"
)

// Options configures a MetalSVM machine. Zero values select the paper's
// defaults (48 cores at 533 MHz, 800 MHz mesh and memory, IPI-driven
// mailboxes, strong consistency).
type Options struct {
	// Topology selects the machine shape through the validated topology
	// API — scc.PaperSCC, scc.Grid, scc.MultiChip, or a hand-built
	// scc.Config. Nil keeps the paper's 48-core chip. Mutually exclusive
	// with Chip.
	Topology *scc.Config
	// Chip overrides the platform configuration. It predates Topology and
	// is retained for existing callers; new code should set Topology.
	Chip *scc.Config
	// Kernel overrides the kernel configuration (mailbox mode, timer).
	Kernel *kernel.Config
	// SVM overrides the SVM configuration (consistency model, calibration).
	SVM *svm.Config
	// Members lists the cores to boot (sorted, distinct). Defaults to all.
	Members []int
	// Observe configures instrumentation (tracing, race checking, metrics,
	// profiling) in one place; read the artifacts from
	// Machine.Observability() after the run.
	Observe Instrumentation
	// Faults, when non-nil, enables deterministic fault injection with the
	// given seed and schedule, plus (unless Config.NoHarden) the hardened
	// recovery protocols and the progress watchdog. Nil reproduces plain
	// runs bit for bit.
	Faults *faults.Config
	// IntraParallel, when > 1, runs this machine's single simulation on
	// that many host workers using the engine's conservative-PDES wave
	// dispatch. Results — simulated timestamps, traces, checksums — are
	// bit-identical to serial dispatch; only host wall-clock changes. Zero
	// adopts the process default (fastpath.SetIntraWorkers, set by
	// sccbench's -intra flag); 1 forces serial dispatch.
	IntraParallel int
	// ReplicatedDirectory, when non-nil, replaces the SVM system's
	// single-copy ownership directory with the crash-fault-tolerant
	// replicated one: Members become the SVM worker set and the manager
	// cores (Config.Managers, or the highest free cores) are booted
	// alongside them running the replication kernel. Nil keeps the legacy
	// directory bit for bit.
	ReplicatedDirectory *repldir.Config
}

// Default hardening parameters applied by WireFaults when the kernel config
// leaves them zero: the watchdog samples cluster progress every 2 ms of
// simulated time and fires after 8 frozen windows; hardened WaitFor parks
// re-scan their mailboxes every 500 µs.
const DefaultWatchdogStrikes = 8

var (
	defaultWatchdogPeriod = sim.Microseconds(2000)
	defaultRescuePeriod   = sim.Microseconds(500)
)

// WireFaults installs a fault injector built from fc onto the chip and fills
// in the kernel config's watchdog and rescue defaults. It must run before
// kernel.NewCluster (the cluster arms its watchdog at construction). A nil
// fc is a no-op, preserving the plain machine bit for bit.
func WireFaults(chip *scc.Chip, kcfg *kernel.Config, fc *faults.Config) {
	if fc == nil {
		return
	}
	chip.SetFaultInjector(faults.NewInjector(*fc), !fc.NoHarden)
	if kcfg.WatchdogPeriod == 0 {
		kcfg.WatchdogPeriod = defaultWatchdogPeriod
	}
	if kcfg.WatchdogStrikes == 0 {
		kcfg.WatchdogStrikes = DefaultWatchdogStrikes
	}
	if !fc.NoHarden && kcfg.RescuePeriod == 0 {
		kcfg.RescuePeriod = defaultRescuePeriod
	}
}

// FirstN returns the member list {0, 1, ..., n-1}. AllCores is the
// topology-aware replacement; FirstN stays for existing callers.
func FirstN(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// AllCores returns every core id of a topology — {0, ..., total-1} for the
// normalized chip count and grid size.
func AllCores(topo scc.Config) []int {
	topo = topo.Normalized()
	return FirstN(topo.Chips * topo.Mesh.Width * topo.Mesh.Height * topo.Mesh.CoresPerTile)
}

// ChipCores returns chip ch's core-id range of a topology: global core ids
// are chip-major, so chip ch owns {ch*per, ..., (ch+1)*per-1}.
func ChipCores(topo scc.Config, ch int) []int {
	topo = topo.Normalized()
	per := topo.Mesh.Width * topo.Mesh.Height * topo.Mesh.CoresPerTile
	m := make([]int, per)
	for i := range m {
		m[i] = ch*per + i
	}
	return m
}

// Env is what a workload receives on each booted core.
type Env struct {
	// K is the MetalSVM kernel on this core.
	K *kernel.Kernel
	// SVM is this kernel's handle on the shared virtual memory system.
	SVM *svm.Handle
}

// Core returns the underlying processor model.
func (e *Env) Core() *cpu.Core { return e.K.Core() }

// Machine is a booted MetalSVM system.
type Machine struct {
	Engine  *sim.Engine
	Chip    *scc.Chip
	Cluster *kernel.Cluster
	SVM     *svm.System
	// Dir is the replicated ownership directory, non-nil when
	// Options.ReplicatedDirectory was set.
	Dir *repldir.System
	// Race is the happens-before checker, non-nil when race checking was
	// enabled via Options.Observe.Race.
	Race *racecheck.Checker

	obs     *Observation
	started bool
}

// Observability returns the machine's observation (nil when Options.Observe
// requested nothing). Artifacts — metrics snapshot, profile report,
// Perfetto export — are available after Run returns.
func (m *Machine) Observability() *Observation { return m.obs }

// NewMachine builds the platform, cluster and SVM system.
func NewMachine(opts Options) (*Machine, error) {
	eng := sim.NewEngine()
	ccfg := scc.DefaultConfig()
	switch {
	case opts.Topology != nil && opts.Chip != nil:
		return nil, fmt.Errorf("core: set Options.Topology or Options.Chip, not both")
	case opts.Topology != nil:
		ccfg = *opts.Topology
	case opts.Chip != nil:
		ccfg = *opts.Chip
	}
	chip, err := scc.New(eng, ccfg)
	if err != nil {
		return nil, err
	}
	kcfg := kernel.DefaultConfig()
	if opts.Kernel != nil {
		kcfg = *opts.Kernel
	}
	WireFaults(chip, &kcfg, opts.Faults)
	members := opts.Members
	var workers, managers []int
	rcfg := opts.ReplicatedDirectory
	if rcfg != nil && !chip.FaultsHardened() {
		// The replication kernel's managers send from their interrupt
		// handlers; only the hardened mailbox/wait paths (which drain the
		// sender's own inbox while blocked) make that deadlock-free. Force
		// them on even for fault-free runs — this overrides NoHarden.
		chip.Harden()
		if kcfg.RescuePeriod == 0 {
			kcfg.RescuePeriod = defaultRescuePeriod
		}
	}
	if rcfg != nil {
		workers = members
		if workers == nil {
			workers = defaultWorkers(chip)
		}
		managers = rcfg.Managers
		if managers == nil {
			managers, err = pickManagers(chip, workers)
			if err != nil {
				return nil, err
			}
		}
		members = sortedUnion(workers, managers)
	}
	if members == nil {
		members = FirstN(chip.Cores())
	}
	cl, err := kernel.NewCluster(chip, kcfg, members)
	if err != nil {
		return nil, err
	}
	scfg := svm.DefaultConfig(svm.Strong)
	if opts.SVM != nil {
		scfg = *opts.SVM
	}
	if rcfg != nil {
		scfg.Workers = workers
	}
	sys, err := svm.New(cl, scfg)
	if err != nil {
		return nil, err
	}
	m := &Machine{Engine: eng, Chip: chip, Cluster: cl, SVM: sys}
	if rcfg != nil {
		dcfg := *rcfg
		dcfg.Managers = managers
		dir, err := repldir.New(sys, dcfg)
		if err != nil {
			return nil, err
		}
		sys.SetDirectory(dir)
		m.Dir = dir
	}
	if opts.Faults != nil {
		cl.AddDiagnostic(sys.DumpDiagnostics)
		if m.Dir != nil {
			cl.AddDiagnostic(m.Dir.DumpDiagnostics)
		}
		m.resolveCrashes(opts.Faults)
	}
	m.obs = Observe(opts.Observe, chip, []*kernel.Cluster{cl}, []*svm.System{sys})
	m.obs.AddDirectory(m.Dir)
	m.Race = m.obs.Race()
	intra := opts.IntraParallel
	if intra == 0 {
		intra = fastpath.IntraWorkers()
	}
	WireIntra(eng, chip, intra)
	return m, nil
}

// defaultWorkers is the worker set used when a replicated-directory machine
// gives no members: every core except the ReplicaCount highest of each chip,
// which are reserved for that chip's manager group.
func defaultWorkers(chip *scc.Chip) []int {
	per := chip.CoresPerChip()
	var workers []int
	for ch := 0; ch < chip.Chips(); ch++ {
		base := ch * per
		for id := base; id < base+per-repldir.ReplicaCount; id++ {
			workers = append(workers, id)
		}
	}
	return workers
}

// pickManagers selects each chip's highest cores that are not SVM workers
// as that chip's manager group, listed chip by chip (chip 0's group first)
// with each group in ascending order (group[0] is its initial primary).
func pickManagers(chip *scc.Chip, workers []int) ([]int, error) {
	inWorkers := make(map[int]bool, len(workers))
	for _, w := range workers {
		inWorkers[w] = true
	}
	per := chip.CoresPerChip()
	var managers []int
	for ch := 0; ch < chip.Chips(); ch++ {
		base := ch * per
		var picked []int
		for id := base + per - 1; id >= base && len(picked) < repldir.ReplicaCount; id-- {
			if !inWorkers[id] {
				picked = append(picked, id)
			}
		}
		if len(picked) < repldir.ReplicaCount {
			return nil, fmt.Errorf("core: no %d free cores for chip %d's directory managers (workers %v, %d cores per chip)",
				repldir.ReplicaCount, ch, workers, per)
		}
		// picked is descending; view order wants ascending.
		for i, j := 0, len(picked)-1; i < j; i, j = i+1, j-1 {
			picked[i], picked[j] = picked[j], picked[i]
		}
		managers = append(managers, picked...)
	}
	return managers, nil
}

// sortedUnion merges two distinct-sorted member lists.
func sortedUnion(a, b []int) []int {
	seen := make(map[int]bool, len(a)+len(b))
	var out []int
	for _, id := range a {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, id := range b {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// resolveCrashes installs the fault schedule's permanent crashes on the
// cluster, resolving role sentinels against the machine's directory layout.
// Sentinel entries are inert without the replicated directory, and entries
// with no time are harness markers left for the benchmark driver to fill in.
func (m *Machine) resolveCrashes(fc *faults.Config) {
	if len(fc.Spec.Crashes) > 0 {
		// Any crash entry — even a time-less harness marker that schedules
		// nothing — switches the run's barriers to the crash-tolerant
		// scheme, so calibration runs with inert entries stay bit-identical
		// to the armed runs they calibrate.
		m.Cluster.ArmCrashBarriers()
	}
	for _, c := range fc.Spec.Crashes {
		id := c.Core
		switch id {
		case faults.CrashPrimaryManager:
			if m.Dir == nil {
				continue
			}
			id = m.Dir.Managers()[0]
		case faults.CrashBackupManager:
			if m.Dir == nil {
				continue
			}
			id = m.Dir.Managers()[1]
		case faults.CrashLastWorker:
			if m.Dir == nil {
				continue
			}
			w := m.SVM.Workers()
			id = w[len(w)-1]
		}
		if id < 0 {
			continue
		}
		switch {
		case c.AfterDoneUS > 0:
			m.Cluster.ScheduleCrashAfterDone(id, sim.Microseconds(c.AfterDoneUS))
		case c.AtUS > 0:
			m.Cluster.ScheduleCrash(id, sim.Microseconds(c.AtUS))
		}
	}
}

// Run boots each member with its main (every member must have one) and
// drives the simulation to completion, returning the final simulated time.
func (m *Machine) Run(mains map[int]func(*Env)) sim.Time {
	if m.started {
		panic("core: machine already run")
	}
	m.started = true
	for _, id := range m.Cluster.Members() {
		main := mains[id]
		if main == nil && m.Dir != nil && m.Dir.IsManager(id) {
			// Managers default to the directory service loop.
			main = func(env *Env) { m.Dir.ManagerMain(env.K) }
		}
		if main == nil {
			panic(fmt.Sprintf("core: no main for member %d", id))
		}
		m.Cluster.Start(id, func(k *kernel.Kernel) {
			if m.Dir != nil {
				m.Dir.Attach(k)
			}
			main(&Env{K: k, SVM: m.SVM.Attach(k)})
		})
	}
	end := m.Engine.Run()
	m.Engine.Shutdown()
	m.obs.Finish()
	return end
}

// RunAll runs the same main on every SVM worker (every member when the
// legacy directory is in place; directory managers keep their service loop).
func (m *Machine) RunAll(main func(*Env)) sim.Time {
	ids := m.Cluster.Members()
	if m.Dir != nil {
		ids = m.SVM.Workers()
	}
	mains := make(map[int]func(*Env), len(ids))
	for _, id := range ids {
		mains[id] = main
	}
	return m.Run(mains)
}

// Baseline is the comparison system: bare cores (think "SCC Linux") with
// the RCCE/iRCCE communication library and full L1+L2 caching of private
// memory — no MetalSVM kernels, no SVM.
type Baseline struct {
	Engine *sim.Engine
	Chip   *scc.Chip
	Comm   *rcce.Comm

	started bool
}

// NewBaseline builds the platform with an RCCE communicator over the given
// cores (rank order).
func NewBaseline(chipCfg *scc.Config, cores []int) (*Baseline, error) {
	eng := sim.NewEngine()
	ccfg := scc.DefaultConfig()
	if chipCfg != nil {
		ccfg = *chipCfg
	}
	chip, err := scc.New(eng, ccfg)
	if err != nil {
		return nil, err
	}
	comm, err := rcce.New(chip, cores)
	if err != nil {
		return nil, err
	}
	WireIntra(eng, chip, fastpath.IntraWorkers())
	return &Baseline{Engine: eng, Chip: chip, Comm: comm}, nil
}

// Run boots every rank with main(rank, core) and drives the simulation.
func (b *Baseline) Run(main func(rank int, c *cpu.Core)) sim.Time {
	if b.started {
		panic("core: baseline already run")
	}
	b.started = true
	for r := 0; r < b.Comm.Size(); r++ {
		r := r
		b.Chip.Boot(b.Comm.CoreOf(r), func(c *cpu.Core) {
			main(r, c)
		})
	}
	end := b.Engine.Run()
	b.Engine.Shutdown()
	return end
}

// Mode returns the cluster's mailbox mode (for reporting).
func (m *Machine) Mode() mailbox.Mode { return m.Cluster.Mailbox().Mode() }
