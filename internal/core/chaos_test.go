package core

import (
	"strings"
	"testing"

	"metalsvm/internal/apps/laplace"
	"metalsvm/internal/faults"
	"metalsvm/internal/sim"
)

// chaosLaplace runs a small shared-memory Laplace instance under the given
// fault config and returns the end time, the result and the machine.
func chaosLaplace(t *testing.T, fc *faults.Config) (sim.Time, laplace.Result, *Machine) {
	t.Helper()
	p := laplace.Params{Rows: 24, Cols: 16, Iters: 20, TopTemp: 100}
	app := laplace.NewSVM(p, laplace.SVMOptions{})
	m, err := NewMachine(Options{Chip: smallChip(), Members: FirstN(4), Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	end := m.RunAll(func(env *Env) { app.Main(env.SVM) })
	return end, app.Result(), m
}

// TestFaultsDisabledZeroPerturbation is the zero-perturbation cell: a
// machine built with a present-but-disabled fault config (empty schedule,
// hardening off) must reproduce the plain machine bit for bit.
func TestFaultsDisabledZeroPerturbation(t *testing.T) {
	plainEnd, plainRes, _ := chaosLaplace(t, nil)
	disabledEnd, disabledRes, m := chaosLaplace(t, &faults.Config{Seed: 99, NoHarden: true})
	if plainEnd != disabledEnd {
		t.Fatalf("disabled injector perturbed time: %d vs %d", plainEnd, disabledEnd)
	}
	if plainRes != disabledRes {
		t.Fatalf("disabled injector perturbed result: %+v vs %+v", plainRes, disabledRes)
	}
	if m.Chip.FaultInjector().Stats().Decisions != 0 {
		t.Fatalf("disabled injector drew randomness: %+v", m.Chip.FaultInjector().Stats())
	}
	want := laplace.ReferenceChecksum(laplace.Params{Rows: 24, Cols: 16, Iters: 20, TopTemp: 100})
	if plainRes.Checksum != want {
		t.Fatalf("plain checksum %v != reference %v", plainRes.Checksum, want)
	}
}

// TestChaosDeterministicReplay runs the same seed and schedule twice and
// requires bit-identical end times, results and fault statistics.
func TestChaosDeterministicReplay(t *testing.T) {
	cfg := func() *faults.Config {
		spec, _ := faults.PresetSpec("mixed")
		spec.Routes[faults.Mail].DropPermille = 100
		return &faults.Config{Seed: 2026, Spec: spec}
	}
	endA, resA, mA := chaosLaplace(t, cfg())
	endB, resB, mB := chaosLaplace(t, cfg())
	if endA != endB {
		t.Fatalf("same seed diverged in time: %d vs %d", endA, endB)
	}
	if resA != resB {
		t.Fatalf("same seed diverged in result: %+v vs %+v", resA, resB)
	}
	if sA, sB := mA.Chip.FaultInjector().Stats(), mB.Chip.FaultInjector().Stats(); sA != sB {
		t.Fatalf("same seed diverged in fault stats: %+v vs %+v", sA, sB)
	}
}

// TestChaosLaplaceRecovers injects a mixed schedule with an elevated mail
// drop rate and requires the application to finish with the exact reference
// checksum, nonzero injected faults and nonzero recovery activity, without
// tripping the watchdog.
func TestChaosLaplaceRecovers(t *testing.T) {
	spec, _ := faults.PresetSpec("mixed")
	spec.Routes[faults.Mail].DropPermille = 100
	_, res, m := chaosLaplace(t, &faults.Config{Seed: 7, Spec: spec})
	want := laplace.ReferenceChecksum(laplace.Params{Rows: 24, Cols: 16, Iters: 20, TopTemp: 100})
	if res.Checksum != want {
		t.Fatalf("faulted checksum %v != reference %v", res.Checksum, want)
	}
	fs := m.Chip.FaultInjector().Stats()
	if fs.Injected() == 0 {
		t.Fatal("schedule injected nothing")
	}
	mbs := m.Cluster.Mailbox().Stats()
	recoveries := mbs.Retransmits + mbs.Renudges + mbs.CorruptDrops + mbs.DupFrames
	if recoveries == 0 {
		t.Fatalf("no recovery activity despite %d injected faults: %+v", fs.Injected(), mbs)
	}
	if m.Cluster.WatchdogFired() {
		t.Fatalf("watchdog fired on a recovering run:\n%s", m.Cluster.WatchdogReport())
	}
}

// TestChaosFaultedMatchesFaultFree checks the recovery machinery is
// functionally transparent: the faulted-and-recovered run computes the same
// grid as a hardened fault-free run (timing differs, values must not).
func TestChaosFaultedMatchesFaultFree(t *testing.T) {
	spec, _ := faults.PresetSpec("drops")
	_, faulted, _ := chaosLaplace(t, &faults.Config{Seed: 5, Spec: spec})
	_, clean, _ := chaosLaplace(t, &faults.Config{Seed: 5})
	if faulted.Checksum != clean.Checksum {
		t.Fatalf("faulted checksum %v != fault-free %v", faulted.Checksum, clean.Checksum)
	}
}

// TestWatchdogFiresOnStuckCluster disables hardening, drops every mail and
// checks the watchdog detects the frozen barrier, stops the run and leaves a
// diagnostic report instead of hanging.
func TestWatchdogFiresOnStuckCluster(t *testing.T) {
	var spec faults.Spec
	spec.Routes[faults.Mail].DropPermille = 1000
	m, err := NewMachine(Options{Chip: smallChip(), Members: []int{0, 1},
		Faults: &faults.Config{Seed: 1, Spec: spec, NoHarden: true}})
	if err != nil {
		t.Fatal(err)
	}
	m.RunAll(func(env *Env) { env.K.Barrier() })
	if !m.Cluster.WatchdogFired() {
		t.Fatal("watchdog did not fire on a stuck cluster")
	}
	rep := m.Cluster.WatchdogReport()
	if !strings.Contains(rep, "mailbox") || !strings.Contains(rep, "watchdog") {
		t.Fatalf("diagnostic report incomplete:\n%s", rep)
	}
}

// TestWatchdogDumpSections wedges core 1 inside a strong-model ownership
// acquisition (the owner-request mail chain loses a frame with hardening
// off) and checks the watchdog report carries every diagnostic layer: the
// per-kernel state lines, the mailbox in-flight dump, and the SVM section
// down to the owner-vector entry of the page being acquired. The seed is
// chosen so the collective-alloc barrier survives the drops but the
// ownership transfer does not.
func TestWatchdogDumpSections(t *testing.T) {
	var spec faults.Spec
	spec.Routes[faults.Mail].DropPermille = 400
	m, err := NewMachine(Options{Chip: smallChip(), Members: []int{0, 1},
		Faults: &faults.Config{Seed: 1, Spec: spec, NoHarden: true}})
	if err != nil {
		t.Fatal(err)
	}
	m.RunAll(func(env *Env) {
		base := env.SVM.Alloc(4096)
		if env.K.ID() == 0 {
			env.Core().Store64(base, 1) // first touch: core 0 owns the page
		}
		env.Core().Cycles(100000) // let the owner settle before core 1 faults
		if env.K.ID() == 1 {
			env.Core().Store64(base, 2) // must acquire from core 0 over mail
		}
		env.K.Barrier()
	})
	if !m.Cluster.WatchdogFired() {
		t.Fatal("watchdog did not fire on the wedged acquisition")
	}
	rep := m.Cluster.WatchdogReport()
	for _, want := range []string{
		"watchdog: no cluster progress",
		"kernel 0:", "kernel 1:", // per-kernel state
		"mailbox:",     // in-flight mail dump
		"svm (",        // SVM diagnostic section
		"inFault",      // the stuck handle's wait state
		"owner vector", // the contested page's owner entry
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("watchdog report missing %q:\n%s", want, rep)
		}
	}
}
