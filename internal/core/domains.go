package core

import (
	"fmt"

	"metalsvm/internal/kernel"
	"metalsvm/internal/racecheck"
	"metalsvm/internal/scc"
	"metalsvm/internal/sim"
	"metalsvm/internal/svm"
)

// Domains realizes the coherency-domain partitioning from the paper's
// introduction: the chip's computing resources split into several
// independent clusters, each with its own MetalSVM kernel set and its own
// SVM system over a private slice of the shared memory. Mailbox slots are
// keyed by (sender, receiver) pairs and the SVM metadata lives in each
// domain's own frame slice, so the domains share nothing but the silicon.
type Domains struct {
	Engine *sim.Engine
	Chip   *scc.Chip
	// Race is the chip-wide happens-before checker, non-nil after
	// EnableRaceCheck. One checker covers all domains: their core sets and
	// page ranges are disjoint, so cross-domain conflicts cannot arise, and
	// sync objects are keyed per cluster/system.
	Race *racecheck.Checker

	clusters []*kernel.Cluster
	systems  []*svm.System

	obs     *Observation
	started bool
}

// Observe wires instrumentation covering every domain. It must be called
// before Run, at most once; the observation (also available later through
// Observability) is returned.
func (ds *Domains) Observe(cfg Instrumentation) *Observation {
	if ds.started {
		panic("core: Observe after Run")
	}
	if ds.obs != nil {
		panic("core: Observe called twice")
	}
	ds.obs = Observe(cfg, ds.Chip, ds.clusters, ds.systems)
	if r := ds.obs.Race(); r != nil {
		ds.Race = r
	}
	return ds.obs
}

// Observability returns the domains' observation (nil when Observe was not
// called or requested nothing).
func (ds *Domains) Observability() *Observation { return ds.obs }

// EnableRaceCheck attaches a happens-before race checker covering every
// domain. It must be called before Run; the checker is also returned.
//
// Deprecated: use Observe(Instrumentation{Race: &cfg}) instead.
func (ds *Domains) EnableRaceCheck(cfg racecheck.Config) *racecheck.Checker {
	if ds.started {
		panic("core: EnableRaceCheck after Run")
	}
	if ds.Race != nil {
		return ds.Race
	}
	ds.Race = wireRaceChecker(cfg, ds.Chip, ds.clusters, ds.systems)
	return ds.Race
}

// DomainSpec describes one coherency domain.
type DomainSpec struct {
	// Members are the domain's cores (sorted, distinct; domains must be
	// pairwise disjoint).
	Members []int
	// Kernel overrides the kernel configuration.
	Kernel *kernel.Config
	// SVM overrides the SVM configuration. Page ranges are assigned by
	// NewDomains (an explicit PageLo/PageHi here is rejected — the split
	// must partition).
	SVM *svm.Config
}

// NewDomains builds one chip carrying len(specs) independent MetalSVM
// instances. The shared region is split into equal contiguous page ranges,
// one per domain.
func NewDomains(chipCfg *scc.Config, specs []DomainSpec) (*Domains, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no domains")
	}
	eng := sim.NewEngine()
	ccfg := scc.DefaultConfig()
	if chipCfg != nil {
		ccfg = *chipCfg
	}
	chip, err := scc.New(eng, ccfg)
	if err != nil {
		return nil, err
	}
	// Disjointness check across domains.
	owner := make(map[int]int)
	for d, spec := range specs {
		for _, m := range spec.Members {
			if prev, dup := owner[m]; dup {
				return nil, fmt.Errorf("core: core %d in domains %d and %d", m, prev, d)
			}
			owner[m] = d
		}
	}
	totalPages := chip.Layout().SharedFrames()
	perDomain := totalPages / uint32(len(specs))
	if perDomain == 0 {
		return nil, fmt.Errorf("core: shared region too small for %d domains", len(specs))
	}
	ds := &Domains{Engine: eng, Chip: chip}
	for d, spec := range specs {
		kcfg := kernel.DefaultConfig()
		if spec.Kernel != nil {
			kcfg = *spec.Kernel
		}
		cl, err := kernel.NewCluster(chip, kcfg, spec.Members)
		if err != nil {
			return nil, fmt.Errorf("core: domain %d: %w", d, err)
		}
		scfg := svm.DefaultConfig(svm.Strong)
		if spec.SVM != nil {
			scfg = *spec.SVM
		}
		if scfg.PageLo != 0 || scfg.PageHi != 0 {
			return nil, fmt.Errorf("core: domain %d sets an explicit page range", d)
		}
		scfg.PageLo = uint32(d) * perDomain
		scfg.PageHi = uint32(d+1) * perDomain
		if scfg.PageLo == 0 {
			scfg.PageLo = 1 // frame 0 is the directory's "unallocated" mark
		}
		sys, err := svm.New(cl, scfg)
		if err != nil {
			return nil, fmt.Errorf("core: domain %d: %w", d, err)
		}
		ds.clusters = append(ds.clusters, cl)
		ds.systems = append(ds.systems, sys)
	}
	return ds, nil
}

// Count returns the number of domains.
func (ds *Domains) Count() int { return len(ds.clusters) }

// Cluster returns domain d's kernel cluster.
func (ds *Domains) Cluster(d int) *kernel.Cluster { return ds.clusters[d] }

// SVM returns domain d's SVM system.
func (ds *Domains) SVM(d int) *svm.System { return ds.systems[d] }

// Run boots every domain member with mains[domain][core] and drives the
// single shared simulation to completion.
func (ds *Domains) Run(mains []map[int]func(*Env)) sim.Time {
	if ds.started {
		panic("core: domains already run")
	}
	ds.started = true
	if len(mains) != len(ds.clusters) {
		panic(fmt.Sprintf("core: %d main sets for %d domains", len(mains), len(ds.clusters)))
	}
	for d, cl := range ds.clusters {
		sys := ds.systems[d]
		for _, id := range cl.Members() {
			main := mains[d][id]
			if main == nil {
				panic(fmt.Sprintf("core: domain %d: no main for member %d", d, id))
			}
			cl.Start(id, func(k *kernel.Kernel) {
				main(&Env{K: k, SVM: sys.Attach(k)})
			})
		}
	}
	end := ds.Engine.Run()
	ds.Engine.Shutdown()
	ds.obs.Finish()
	return end
}

// RunAll runs the same main on every member of every domain.
func (ds *Domains) RunAll(main func(domain int, env *Env)) sim.Time {
	mains := make([]map[int]func(*Env), len(ds.clusters))
	for d, cl := range ds.clusters {
		d := d
		mains[d] = make(map[int]func(*Env))
		for _, id := range cl.Members() {
			mains[d][id] = func(env *Env) { main(d, env) }
		}
	}
	return ds.Run(mains)
}
