package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"metalsvm/internal/profile"
	"metalsvm/internal/racecheck"
	"metalsvm/internal/sim"
	"metalsvm/internal/svm"
)

// observedWorkload runs a small two-core SVM workload that exercises every
// profiled bucket: faults and the ownership protocol, barriers, locks, and
// plain memory traffic.
func observedWorkload(t *testing.T, inst Instrumentation) (sim.Time, *Machine) {
	t.Helper()
	scfg := svm.DefaultConfig(svm.Strong)
	m, err := NewMachine(Options{
		Chip: smallChip(), SVM: &scfg, Members: []int{0, 47}, Observe: inst,
	})
	if err != nil {
		t.Fatal(err)
	}
	end := m.RunAll(func(env *Env) {
		base := env.SVM.Alloc(8192)
		if env.K.ID() == 0 {
			env.Core().Store64(base, 1)
		}
		env.SVM.Barrier()
		if env.K.ID() == 47 {
			env.Core().Store64(base, 2) // steal ownership from core 0
		}
		env.SVM.Lock(0)
		env.Core().Store64(base+4096, uint64(env.K.ID()))
		env.SVM.Unlock(0)
		// Repeated loads: the first fills L1, the rest hit.
		for i := 0; i < 4; i++ {
			env.Core().Load64(base + 4096)
		}
		env.SVM.Barrier()
	})
	return end, m
}

// TestZeroPerturbation is the headline invariant: a run with every observer
// enabled finishes at exactly the same simulated time as an uninstrumented
// run.
func TestZeroPerturbation(t *testing.T) {
	plain, mPlain := observedWorkload(t, Instrumentation{})
	if mPlain.Observability() != nil {
		t.Fatal("empty instrumentation built an observation")
	}
	full, mFull := observedWorkload(t, Instrumentation{
		TraceCapacity: 8192,
		Race:          &racecheck.Config{},
		Metrics:       true,
		Profile:       &profile.Config{},
	})
	if plain != full {
		t.Fatalf("instrumentation changed simulated time: %v vs %v", plain, full)
	}
	if mFull.Observability() == nil {
		t.Fatal("no observation")
	}
}

// TestProfileBucketsPartitionTime: every profiled core's buckets sum to its
// total simulated time, and the protocol buckets actually received charges.
func TestProfileBucketsPartitionTime(t *testing.T) {
	_, m := observedWorkload(t, Instrumentation{Profile: &profile.Config{}})
	r := m.Observability().ProfileReport()
	if r == nil || len(r.Cores) != 2 {
		t.Fatalf("report = %+v", r)
	}
	var agg profile.CoreReport
	for _, c := range r.Cores {
		if c.Sum() != c.Total {
			t.Errorf("core %d buckets sum to %d, total %d", c.Core, c.Sum(), c.Total)
		}
	}
	agg = r.Aggregate()
	for _, b := range []profile.Bucket{
		profile.Compute, profile.FaultHandling, profile.BarrierWait, profile.LockWait,
	} {
		if agg.Buckets[b] == 0 {
			t.Errorf("bucket %v never charged", b)
		}
	}
}

// TestMetricsSnapshotHarvest: the end-of-run snapshot carries the
// subsystems' counters under their stable names.
func TestMetricsSnapshotHarvest(t *testing.T) {
	_, m := observedWorkload(t, Instrumentation{Metrics: true, TraceCapacity: 8192})
	s := m.Observability().MetricsSnapshot()
	if s == nil {
		t.Fatal("no snapshot")
	}
	for _, name := range []string{
		"cpu.loads", "cpu.stores", "cpu.faults", "cache.l1.hits",
		"mailbox.sends", "mesh.ddr_reads", "svm.faults", "svm.locks",
		"svm.barriers", "kernel.barriers", "trace.events",
	} {
		if s.Counter(name) == 0 {
			t.Errorf("counter %q is zero", name)
		}
	}
	if s.Counter("svm.owner_requests") == 0 {
		t.Error("ownership steal produced no owner requests")
	}
}

// TestPerfettoExportFromMachine: the export is valid JSON with events.
func TestPerfettoExportFromMachine(t *testing.T) {
	_, m := observedWorkload(t, Instrumentation{
		TraceCapacity: 8192, Profile: &profile.Config{},
	})
	var buf bytes.Buffer
	if err := m.Observability().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var d struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(d.TraceEvents) == 0 {
		t.Fatal("empty export from an instrumented run")
	}
}

// TestRaceWiresThroughObservation: Observe.Race wires the checker and the
// Machine.Race convenience field points at the same instance.
func TestRaceWiresThroughObservation(t *testing.T) {
	scfg := svm.DefaultConfig(svm.Strong)
	m, err := NewMachine(Options{
		Chip: smallChip(), SVM: &scfg, Members: []int{0, 1},
		Observe: Instrumentation{Race: &racecheck.Config{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Race == nil {
		t.Fatal("Observe.Race did not wire the checker")
	}
	if m.Observability() == nil || m.Observability().Race() != m.Race {
		t.Fatal("Machine.Race does not match the observation's checker")
	}
}

// TestNilObservationAccessors: a nil observation answers every accessor.
func TestNilObservationAccessors(t *testing.T) {
	var o *Observation
	o.Finish()
	if o.Race() != nil || o.Profiler() != nil || o.ProfileReport() != nil ||
		o.MetricsSnapshot() != nil || o.TraceEvents() != nil {
		t.Fatal("nil observation misbehaves")
	}
	if s := o.TraceSummary(); s.Total != 0 {
		t.Fatal("nil trace summary non-empty")
	}
	if err := o.WritePerfetto(&bytes.Buffer{}); err == nil {
		t.Fatal("nil observation export did not error")
	}
}

// TestDomainsObserve: the domains facade wires the same observation across
// every domain.
func TestDomainsObserve(t *testing.T) {
	ds, err := NewDomains(smallChip(), []DomainSpec{
		{Members: []int{0, 1}},
		{Members: []int{24, 25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	obs := ds.Observe(Instrumentation{Metrics: true, Profile: &profile.Config{}})
	if obs == nil || ds.Observability() != obs {
		t.Fatal("domains observation not retained")
	}
	ds.RunAll(func(domain int, env *Env) {
		base := env.SVM.Alloc(4096)
		env.Core().Store64(base, uint64(domain))
		env.SVM.Barrier()
	})
	r := obs.ProfileReport()
	if r == nil || len(r.Cores) != 4 {
		t.Fatalf("report covers %d cores, want 4", len(r.Cores))
	}
	if obs.MetricsSnapshot().Counter("svm.faults") == 0 {
		t.Fatal("snapshot missed the domains' faults")
	}
}
