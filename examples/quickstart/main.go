// Quickstart: boot MetalSVM on four simulated SCC cores, allocate shared
// virtual memory, and pass a value between cores with no explicit
// communication — the SVM system's ownership protocol moves the page.
// Instrumentation (metrics + profiler) rides along through Options.Observe
// without changing a single simulated cycle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"metalsvm"
)

func main() {
	m, err := metalsvm.NewMachine(metalsvm.Options{
		Members: metalsvm.FirstN(4), // boot cores 0..3 (strong model by default)
		Observe: metalsvm.Instrumentation{
			Metrics: true,
			Profile: &metalsvm.ProfileConfig{},
		},
	})
	if err != nil {
		panic(err)
	}

	results := make([]uint64, 4)
	m.RunAll(func(env *metalsvm.Env) {
		me := env.K.ID()

		// Collective allocation: every kernel calls it, all get the same
		// virtual base. Only address space is reserved — the physical frame
		// appears near the first core that touches the page.
		base := env.SVM.Alloc(4096)

		// Core 0 seeds the value; the barrier orders the phases.
		if me == 0 {
			env.Core().Store64(base, 1000)
		}
		env.SVM.Barrier()

		// Each core takes its turn incrementing the shared counter. Under
		// the strong model every access faults if the core does not own the
		// page; ownership migrates via the mailbox system automatically.
		for turn := 0; turn < 4; turn++ {
			if turn == me {
				v := env.Core().Load64(base)
				env.Core().Store64(base, v+uint64(me+1))
			}
			env.SVM.Barrier()
		}

		results[me] = env.Core().Load64(base)
		faults := env.SVM.Stats().Faults
		fmt.Printf("core %d sees %d after %2d page faults (simulated time %.1f us)\n",
			me, results[me], faults, env.Core().Now().Microseconds())
	})

	want := uint64(1000 + 1 + 2 + 3 + 4)
	fmt.Printf("\nall cores agree: %v (expected %d)\n", results, want)
	for _, v := range results {
		if v != want {
			panic("shared memory incoherent!")
		}
	}

	// The observation holds the run's artifacts: where every simulated
	// cycle went, and the harvested protocol counters.
	obs := m.Observability()
	fmt.Printf("\nSVM moved ownership %d times for %d faults:\n",
		obs.MetricsSnapshot().Counter("svm.owner_requests"),
		obs.MetricsSnapshot().Counter("svm.faults"))
	obs.ProfileReport().WriteText(os.Stdout)
}
