// Heatmap: the paper's motivating application — the two-dimensional
// Laplace heat-distribution problem — solved three ways on the simulated
// SCC and cross-checked bit-exactly:
//
//   - plain Go reference,
//   - shared-memory version on MetalSVM (lazy release consistency),
//   - message-passing version over iRCCE ("under Linux").
//
// Prints an ASCII heat map and the three checksums.
//
//	go run ./examples/heatmap
package main

import (
	"fmt"

	"metalsvm/internal/apps/laplace"
	"metalsvm/internal/core"
	"metalsvm/internal/cpu"
	"metalsvm/internal/scc"
	"metalsvm/internal/svm"
)

func main() {
	p := laplace.Params{Rows: 64, Cols: 64, Iters: 500, TopTemp: 100}
	cores := 8

	// Ground truth.
	grid := laplace.Reference(p)
	ref := laplace.ChecksumGrid(grid)

	// Shared-memory variant on MetalSVM.
	chipCfg := scc.DefaultConfig()
	chipCfg.PrivateMemPerCore = 4 << 20
	chipCfg.SharedMem = 16 << 20
	scfg := svm.DefaultConfig(svm.LazyRelease)
	m, err := core.NewMachine(core.Options{
		Chip:    &chipCfg,
		SVM:     &scfg,
		Members: core.FirstN(cores),
	})
	if err != nil {
		panic(err)
	}
	svmApp := laplace.NewSVM(p, laplace.SVMOptions{})
	m.RunAll(func(env *core.Env) { svmApp.Main(env.SVM) })
	svmRes := svmApp.Result()

	// Message-passing variant over iRCCE.
	b, err := core.NewBaseline(&chipCfg, core.FirstN(cores))
	if err != nil {
		panic(err)
	}
	mpApp := laplace.NewBaseline(p, b.Comm)
	b.Run(func(rank int, c *cpu.Core) { mpApp.Main(rank, c) })
	mpRes := mpApp.Result()

	// ASCII rendering of the reference solution.
	shades := []byte(" .:-=+*#%@")
	fmt.Printf("heat distribution after %d Jacobi iterations (%dx%d, top edge %.0f deg):\n\n",
		p.Iters, p.Rows, p.Cols, p.TopTemp)
	for r := 0; r < p.Rows; r += 4 {
		line := make([]byte, 0, p.Cols/2)
		for c := 0; c < p.Cols; c += 2 {
			v := grid[r*p.Cols+c]
			idx := int(v / p.TopTemp * float64(len(shades)-1))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line = append(line, shades[idx])
		}
		fmt.Printf("  %s\n", line)
	}

	fmt.Printf("\nchecksums on %d cores:\n", cores)
	fmt.Printf("  reference      : %.10f\n", ref)
	fmt.Printf("  MetalSVM (lazy): %.10f  (%.2f ms simulated, %d page faults)\n",
		svmRes.Checksum, svmRes.Elapsed.Microseconds()/1000, svmRes.Faults)
	fmt.Printf("  iRCCE baseline : %.10f  (%.2f ms simulated)\n",
		mpRes.Checksum, mpRes.Elapsed.Microseconds()/1000)
	if svmRes.Checksum != ref || mpRes.Checksum != ref {
		panic("variant disagrees with the reference")
	}
	fmt.Println("\nall three agree bit-exactly.")
}
