// Readonly: Section 6.4's read-only shared regions. One core builds a
// lookup table in shared memory; the cluster then collectively protects it
// with the mprotect-style call, which (a) traps any further write and (b)
// clears the MPBT page-type bit so the otherwise-sacrificed L2 cache serves
// the readers again. The example measures the scan speedup and provokes
// the write trap.
//
//	go run ./examples/readonly
package main

import (
	"fmt"

	"metalsvm/internal/core"
	"metalsvm/internal/svm"
)

const (
	tableBytes = 64 * 1024 // 16 pages of lookup table
	scans      = 4
)

func main() {
	scfg := svm.DefaultConfig(svm.LazyRelease)
	m, err := core.NewMachine(core.Options{
		SVM:     &scfg,
		Members: []int{0, 30},
	})
	if err != nil {
		panic(err)
	}

	m.Run(map[int]func(*core.Env){
		0: func(env *core.Env) {
			base := env.SVM.Alloc(tableBytes)
			// Build the table (squares, say).
			for off := uint32(0); off < tableBytes; off += 8 {
				v := uint64(off / 8)
				env.Core().Store64(base+off, v*v)
			}
			env.SVM.Barrier()
			env.SVM.ProtectReadOnly(base, tableBytes)
			env.K.Barrier() // wait out the reader's measurements
		},
		30: func(env *core.Env) {
			base := env.SVM.Alloc(tableBytes)
			env.SVM.Barrier()

			scan := func() float64 {
				start := env.Core().Now()
				var sum uint64
				for s := 0; s < scans; s++ {
					for off := uint32(0); off < tableBytes; off += 8 {
						sum += env.Core().Load64(base + off)
					}
				}
				_ = sum
				return (env.Core().Now() - start).Microseconds() / scans
			}

			before := scan() // writable: MPBT pages, L1 only
			env.SVM.ProtectReadOnly(base, tableBytes)
			after := scan() // read-only: MPBT cleared, L2 enabled

			l2 := env.Core().L2().Stats()
			fmt.Printf("scan of a %d KiB shared table on core 30:\n", tableBytes/1024)
			fmt.Printf("  writable region (L1 only)    : %8.1f us per scan\n", before)
			fmt.Printf("  read-only region (L2 enabled): %8.1f us per scan  (%.1fx faster)\n",
				after, before/after)
			fmt.Printf("  L2 after the switch: %d hits, %d fills\n", l2.Hits, l2.Fills)

			// And the protection actually protects:
			func() {
				defer func() {
					if r := recover(); r != nil {
						fmt.Printf("\nwrite to the protected table trapped as expected:\n  %v\n", r)
					}
				}()
				env.Core().Store64(base, 1)
				panic("write to read-only region was NOT trapped")
			}()
			env.K.Barrier()
		},
	})
}
