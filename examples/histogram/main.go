// Histogram: lock-disciplined sharing under lazy release consistency.
// Eight cores bin a synthetic data stream into one shared histogram. Every
// update runs inside an SVM lock (Section 6.2): acquiring invalidates the
// core's cached SVM lines (CL1INVMB), releasing flushes its write-combine
// buffer — that, and nothing else, keeps the non-coherent caches honest.
// The instrumentation attached through Options.Observe shows the cost:
// trace events for every lock hand-off and a metrics snapshot of the
// protocol counters, at zero simulated-cycle overhead.
//
//	go run ./examples/histogram
package main

import (
	"fmt"

	"metalsvm"
)

const (
	bins      = 32
	perCore   = 512
	lockID    = 7
	coreCount = 8
)

// sample is a deterministic pseudo-random stream (xorshift), seeded per
// core — the kind of embarrassingly parallel input with a shared reduction
// the paper's programming model targets.
func sample(seed uint64, i int) int {
	x := seed + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	return int((x * 0x2545f4914f6cdd1d) >> 59) // top 5 bits: 0..31
}

func main() {
	scfg := metalsvm.SVMConfig(metalsvm.LazyRelease)
	m, err := metalsvm.NewMachine(metalsvm.Options{
		SVM:     &scfg,
		Members: metalsvm.FirstN(coreCount),
		Observe: metalsvm.Instrumentation{
			TraceCapacity: 1 << 14,
			Metrics:       true,
		},
	})
	if err != nil {
		panic(err)
	}

	var histBase uint32
	m.RunAll(func(env *metalsvm.Env) {
		me := env.K.ID()
		base := env.SVM.Alloc(bins * 8)
		histBase = base
		env.SVM.Barrier() // everyone sees the zeroed histogram

		// Batch locally, then merge under the lock in chunks — the usual
		// way to keep critical sections short on a machine where every
		// lock acquire costs a test-and-set round trip.
		var local [bins]uint64
		for i := 0; i < perCore; i++ {
			local[sample(uint64(me+1)*1234567, i)]++
		}
		env.SVM.Lock(lockID)
		for b := 0; b < bins; b++ {
			addr := base + uint32(b)*8
			env.Core().Store64(addr, env.Core().Load64(addr)+local[b])
		}
		env.SVM.Unlock(lockID)

		env.SVM.Barrier()
	})

	// Read the final histogram out of simulated memory (host-side view).
	chip := m.Chip
	total := uint64(0)
	fmt.Println("shared histogram built by 8 cores under SVM locks:")
	for b := 0; b < bins; b++ {
		// Translate through core 0's page table.
		e, _ := chip.Core(0).Table.Lookup(histBase + uint32(b)*8)
		v := chip.Mem().Read64(e.PhysAddr(histBase + uint32(b)*8))
		total += v
		bar := make([]byte, v/8)
		for i := range bar {
			bar[i] = '#'
		}
		fmt.Printf("  bin %2d %5d %s\n", b, v, bar)
	}
	want := uint64(coreCount * perCore)
	fmt.Printf("\ntotal samples: %d (expected %d)\n", total, want)
	if total != want {
		panic("lost updates — the lock protocol failed")
	}

	// What did the sharing discipline cost? The snapshot counts every
	// protocol action; the trace records each ownership hand-off.
	obs := m.Observability()
	s := obs.MetricsSnapshot()
	fmt.Printf("\nprotocol cost: %d locks (%d contended), %d faults, %d ownership transfers\n",
		s.Counter("svm.locks"), s.Counter("svm.lock_waits"),
		s.Counter("svm.faults"), s.Counter("svm.owner_served"))
	transfers := metalsvm.TraceFilter(obs.TraceEvents(),
		metalsvm.TraceOfKind(metalsvm.TraceOwnerTransfer))
	mail := metalsvm.TraceFilter(obs.TraceEvents(),
		metalsvm.TraceOfKind(metalsvm.TraceMailSend))
	fmt.Printf("trace recorded %d owner transfers (lazy release moves none) and %d mails\n",
		len(transfers), len(mail))
}
