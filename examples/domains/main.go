// Domains: the paper's introduction promises "a dynamic partitioning of
// the SCC's computing resources into several coherency domains". This
// example splits the chip into two independent MetalSVM instances — one
// running the strong model, one lazy release — each solving its own heat
// problem concurrently, sharing nothing but the silicon. Both results are
// checked bit-exactly against the serial reference.
//
//	go run ./examples/domains
package main

import (
	"fmt"

	"metalsvm/internal/apps/laplace"
	"metalsvm/internal/core"
	"metalsvm/internal/scc"
	"metalsvm/internal/svm"
)

func main() {
	chipCfg := scc.DefaultConfig()
	chipCfg.PrivateMemPerCore = 2 << 20
	chipCfg.SharedMem = 16 << 20

	strongCfg := svm.DefaultConfig(svm.Strong)
	lazyCfg := svm.DefaultConfig(svm.LazyRelease)
	ds, err := core.NewDomains(&chipCfg, []core.DomainSpec{
		{Members: []int{0, 1, 2, 3}, SVM: &strongCfg},   // west side of the chip
		{Members: []int{40, 41, 46, 47}, SVM: &lazyCfg}, // east side
	})
	if err != nil {
		panic(err)
	}

	pA := laplace.Params{Rows: 48, Cols: 48, Iters: 200, TopTemp: 100}
	pB := laplace.Params{Rows: 32, Cols: 64, Iters: 300, TopTemp: 70}
	appA := laplace.NewSVM(pA, laplace.SVMOptions{})
	appB := laplace.NewSVM(pB, laplace.SVMOptions{})

	end := ds.RunAll(func(domain int, env *core.Env) {
		if domain == 0 {
			appA.Main(env.SVM)
		} else {
			appB.Main(env.SVM)
		}
	})

	rA, rB := appA.Result(), appB.Result()
	fmt.Printf("two coherency domains ran concurrently; chip idle at %.2f ms simulated\n\n",
		end.Microseconds()/1000)
	fmt.Printf("domain 0 (strong, cores 0-3):    %dx%d grid, %.2f ms, %d page faults\n",
		pA.Rows, pA.Cols, rA.Elapsed.Microseconds()/1000, rA.Faults)
	fmt.Printf("domain 1 (lazy,   cores 40-47):  %dx%d grid, %.2f ms, %d page faults\n",
		pB.Rows, pB.Cols, rB.Elapsed.Microseconds()/1000, rB.Faults)

	okA := rA.Checksum == laplace.ReferenceChecksum(pA)
	okB := rB.Checksum == laplace.ReferenceChecksum(pB)
	fmt.Printf("\ndomain 0 matches reference: %v\ndomain 1 matches reference: %v\n", okA, okB)
	if !okA || !okB {
		panic("cross-domain interference!")
	}
}
