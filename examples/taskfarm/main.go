// Taskfarm: dynamic load balancing over shared virtual memory. Six cores
// pull unevenly sized tasks from one shared queue protected by an SVM
// lock; results land in shared slots and rank 0 reduces them — no explicit
// message passing anywhere, which is the programming-model point the paper
// opens with.
//
//	go run ./examples/taskfarm
package main

import (
	"fmt"

	"metalsvm/internal/apps/taskfarm"
	"metalsvm/internal/core"
	"metalsvm/internal/svm"
)

func main() {
	scfg := svm.DefaultConfig(svm.LazyRelease)
	m, err := core.NewMachine(core.Options{
		SVM:     &scfg,
		Members: core.FirstN(6),
	})
	if err != nil {
		panic(err)
	}

	p := taskfarm.Params{Tasks: 96, UnitCycles: 5000, LockID: 11}
	app := taskfarm.New(p)
	m.RunAll(func(env *core.Env) { app.Main(env.SVM) })
	r := app.Result()

	fmt.Printf("%d uneven tasks farmed over 6 cores in %.2f ms simulated:\n\n",
		p.Tasks, r.Elapsed.Microseconds()/1000)
	for rank, n := range r.PerCore {
		bar := make([]byte, n)
		for i := range bar {
			bar[i] = '#'
		}
		fmt.Printf("  core %d: %3d tasks %s\n", rank, n, bar)
	}
	fmt.Printf("\nresult sum: %#x (expected %#x)\n", r.Sum, p.Expected())
	if r.Sum != p.Expected() {
		panic("tasks lost or duplicated")
	}
	fmt.Println("every task ran exactly once; early cores picked up the slack.")
}
