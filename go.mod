module metalsvm

go 1.22
